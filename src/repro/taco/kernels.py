"""The paper's Taco benchmarks (Sec. VI-B) as mini-Taco kernels.

Each helper returns a :class:`~repro.taco.lowering.LoweredKernel` plus a
pure-Python reference for validation. Inputs are
:class:`~repro.workloads.matrices.CSRMatrix` objects and dense vectors.
"""

import random

from .formats import csr, dense_matrix, dense_vector
from .lowering import lower

ALPHA = 1.5
BETA = 0.75


def spmv_kernel():
    """SpMV: ``y = A x``."""
    decls = {"y": dense_vector("y"), "A": csr("A"), "x": dense_vector("x")}
    return lower("spmv", "y(i) = A(i,j) * x(j)", decls)


def residual_kernel():
    """Residual: ``y = b - A x``."""
    decls = {
        "y": dense_vector("y"),
        "b": dense_vector("b"),
        "A": csr("A"),
        "x": dense_vector("x"),
    }
    return lower("residual", "y(i) = b(i) - A(i,j) * x(j)", decls)


def mtmul_kernel():
    """MTMul: ``y = alpha * A^T x + beta * z`` (scatter through A's rows)."""
    decls = {
        "y": dense_vector("y"),
        "A": csr("A"),
        "x": dense_vector("x"),
        "z": dense_vector("z"),
    }
    return lower("mtmul", "y(j) = alpha * A(i,j) * x(i) + beta * z(j)", decls)


def sddmm_kernel():
    """SDDMM: ``A = B .* (C D)`` sampled at B's nonzeros."""
    decls = {
        "A": csr("A"),
        "B": csr("B"),
        "C": dense_matrix("C"),
        "D": dense_matrix("D"),
    }
    return lower("sddmm", "A(i,j) = B(i,j) * C(i,k) * D(k,j)", decls)


def dense_input(length, seed):
    """Deterministic dense vector of small floats."""
    rng = random.Random(seed)
    return [round(rng.uniform(-1.0, 1.0), 3) for _ in range(length)]


# ---------------------------------------------------------------------------
# References


def ref_spmv(matrix, x):
    """Oracle for ``y = A x``."""
    out = []
    for i in range(matrix.nrows):
        acc = 0.0
        for k in range(matrix.pos[i], matrix.pos[i + 1]):
            acc = acc + matrix.val[k] * x[matrix.crd[k]]
        out.append(acc)
    return out


def ref_residual(matrix, x, b):
    """Oracle for ``y = b - A x``."""
    out = []
    for i in range(matrix.nrows):
        acc = 0.0
        for k in range(matrix.pos[i], matrix.pos[i + 1]):
            acc = acc + matrix.val[k] * x[matrix.crd[k]]
        out.append(b[i] + 0.0 - acc)
    return out


def ref_mtmul(matrix, x, z, alpha=ALPHA, beta=BETA):
    """Oracle for ``y = alpha A^T x + beta z``."""
    out = [beta * zj for zj in z]
    for i in range(matrix.nrows):
        xi = alpha * x[i]
        for k in range(matrix.pos[i], matrix.pos[i + 1]):
            out[matrix.crd[k]] = out[matrix.crd[k]] + matrix.val[k] * xi
    return out


def ref_sddmm(bmat, cflat, kdim, dflat, ncols):
    """Oracle for ``A = B .* (C D)`` at B's nonzeros."""
    out = []
    for i in range(bmat.nrows):
        crow = i * kdim
        for q in range(bmat.pos[i], bmat.pos[i + 1]):
            j = bmat.crd[q]
            acc = 0.0
            for k in range(kdim):
                acc = acc + cflat[crow + k] * dflat[k * ncols + j]
            out.append(bmat.val[q] * acc)
    return out
