"""End-to-end Taco kernels: serial, Phloem, and striped DP all match oracles."""

import pytest

from repro.core import compile_c
from repro.frontend import compile_source
from repro.runtime import run_pipeline, run_serial
from repro.taco import (
    ALPHA,
    BETA,
    dense_input,
    mtmul_kernel,
    ref_mtmul,
    ref_residual,
    ref_sddmm,
    ref_spmv,
    residual_kernel,
    sddmm_kernel,
    spmv_kernel,
)
from repro.taco.parallel import stripe_data_parallel
from repro.workloads.matrices import random_matrix


@pytest.fixture(scope="module")
def matrix():
    return random_matrix(60, 4, seed=21)


def _approx(a, b, tol=1e-9):
    return all(abs(p - q) <= tol * max(1.0, abs(q)) for p, q in zip(a, b))


class TestSpMV:
    def test_all_variants(self, matrix, tiny_config):
        kernel = spmv_kernel()
        x = dense_input(matrix.ncols, 1)
        arrays, scalars = kernel.bind({"A": matrix, "x": x})
        expected = ref_spmv(matrix, x)
        f = compile_source(kernel.source)
        assert run_serial(f, arrays, scalars, config=tiny_config).arrays["y"] == expected
        pipe = compile_c(kernel.source, num_stages=4)
        assert run_pipeline(pipe, arrays, scalars, config=tiny_config).arrays["y"] == expected
        dp = stripe_data_parallel(f, 3)
        dp_scalars = dict(scalars, nthreads=3)
        assert run_pipeline(dp, arrays, dp_scalars, config=tiny_config).arrays["y"] == expected


class TestResidual:
    def test_serial_and_phloem(self, matrix, tiny_config):
        kernel = residual_kernel()
        x = dense_input(matrix.ncols, 2)
        b = dense_input(matrix.nrows, 3)
        arrays, scalars = kernel.bind({"A": matrix, "x": x, "b": b})
        expected = ref_residual(matrix, x, b)
        f = compile_source(kernel.source)
        assert run_serial(f, arrays, scalars, config=tiny_config).arrays["y"] == expected
        pipe = compile_c(kernel.source, num_stages=4)
        assert run_pipeline(pipe, arrays, scalars, config=tiny_config).arrays["y"] == expected


class TestMTMul:
    def test_serial_and_phloem(self, matrix, tiny_config):
        kernel = mtmul_kernel()
        x = dense_input(matrix.nrows, 4)
        z = dense_input(matrix.ncols, 5)
        arrays, scalars = kernel.bind(
            {"A": matrix, "x": x, "z": z, "alpha": ALPHA, "beta": BETA}
        )
        expected = ref_mtmul(matrix, x, z)
        f = compile_source(kernel.source)
        assert run_serial(f, arrays, scalars, config=tiny_config).arrays["y"] == expected
        pipe = compile_c(kernel.source, num_stages=4)
        assert run_pipeline(pipe, arrays, scalars, config=tiny_config).arrays["y"] == expected

    def test_dp_with_atomics(self, matrix, tiny_config):
        kernel = mtmul_kernel()
        x = dense_input(matrix.nrows, 4)
        z = dense_input(matrix.ncols, 5)
        arrays, scalars = kernel.bind(
            {"A": matrix, "x": x, "z": z, "alpha": ALPHA, "beta": BETA}
        )
        f = compile_source(kernel.source)
        dp = stripe_data_parallel(f, 4, atomic_arrays=("y",))
        from repro.ir import walk

        atomics = [
            s for stage in dp.stages for s in walk(stage.body) if s.kind == "atomic_rmw"
        ]
        assert atomics  # the scatter update became fetch-and-add
        dp_scalars = dict(scalars, nthreads=4)
        got = run_pipeline(dp, arrays, dp_scalars, config=tiny_config).arrays["y"]
        assert _approx(got, ref_mtmul(matrix, x, z))


class TestSDDMM:
    def test_serial_and_phloem(self, tiny_config):
        matrix = random_matrix(25, 4, seed=22)
        kdim = 6
        c = dense_input(matrix.nrows * kdim, 6)
        d = dense_input(kdim * matrix.ncols, 7)
        kernel = sddmm_kernel()
        arrays, scalars = kernel.bind({"B": matrix, "C": (c, kdim), "D": (d, matrix.ncols)})
        expected = ref_sddmm(matrix, c, kdim, d, matrix.ncols)
        f = compile_source(kernel.source)
        assert run_serial(f, arrays, scalars, config=tiny_config).arrays["A_val"] == expected
        pipe = compile_c(kernel.source, num_stages=4)
        assert run_pipeline(pipe, arrays, scalars, config=tiny_config).arrays["A_val"] == expected


def test_striping_barriers_between_nests(matrix):
    kernel = mtmul_kernel()
    f = compile_source(kernel.source)
    dp = stripe_data_parallel(f, 2)
    from repro.ir import walk

    for stage in dp.stages:
        kinds = [s.kind for s in stage.body]
        assert kinds.count("barrier") >= 2  # between nests + at end
