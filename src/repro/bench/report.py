"""ASCII renderers for the evaluation figures.

The paper's figures are bar charts; this module prints them as aligned
tables (one row per benchmark/variant) so ``pytest benchmarks/`` output
reads like the evaluation section.
"""


def render_table(title, headers, rows):
    """Generic aligned table."""
    widths = [len(h) for h in headers]
    str_rows = []
    for row in rows:
        cells = [c if isinstance(c, str) else _fmt(c) for c in row]
        str_rows.append(cells)
        for i, cell in enumerate(cells):
            widths[i] = max(widths[i], len(cell))
    lines = ["", "== %s ==" % title]
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for cells in str_rows:
        lines.append("  ".join(cells[i].ljust(widths[i]) for i in range(len(cells))))
    return "\n".join(lines)


def _fmt(value):
    if isinstance(value, float):
        return "%.2f" % value
    return str(value)


def render_speedups(title, per_benchmark):
    """``{benchmark: {variant: speedup}}`` -> table."""
    variants = []
    for entries in per_benchmark.values():
        for v in entries:
            if v not in variants:
                variants.append(v)
    headers = ["benchmark"] + variants
    rows = []
    for name, entries in per_benchmark.items():
        rows.append([name] + [entries.get(v, float("nan")) for v in variants])
    return render_table(title, headers, rows)


def render_stacked(title, per_benchmark, components):
    """``{benchmark: {variant: {component: value}}}`` -> stacked rows."""
    headers = ["benchmark", "variant"] + list(components) + ["total"]
    rows = []
    for name, variants in per_benchmark.items():
        for variant, comps in variants.items():
            values = [comps.get(c, 0.0) for c in components]
            rows.append([name, variant] + values + [sum(values)])
    return render_table(title, headers, rows)


def render_cache_stats(stats, directory=None):
    """One line per memo layer: hits/lookups and the resulting hit rate.

    ``stats`` is :func:`repro.cache.stats` output. A cold run prints all
    zeros; comparing it against a warm run's line is the cache's
    effectiveness report.
    """
    parts = []
    for layer in sorted(stats):
        hits = stats[layer]["hits"]
        total = hits + stats[layer]["misses"]
        rate = (100.0 * hits / total) if total else 0.0
        parts.append("%s %d/%d (%.0f%%)" % (layer, hits, total, rate))
    line = "cache: " + ", ".join(parts)
    if directory:
        line += "  [dir: %s]" % directory
    return line


def render_job_times(job_results, workers=1, total_wall=None):
    """Per-job wall-time summary for a parallel harness run.

    ``job_results`` are :class:`repro.bench.parallel.JobResult` s; the
    busy total exceeding the elapsed wall is the parallel speedup made
    visible.
    """
    lines = []
    busy = sum(r.wall for r in job_results)
    header = "jobs: %d over %d worker%s, %.1fs busy" % (
        len(job_results),
        workers,
        "" if workers == 1 else "s",
        busy,
    )
    if total_wall is not None:
        header += ", %.1fs elapsed" % total_wall
    lines.append(header)
    for result in sorted(job_results, key=lambda r: -r.wall):
        lines.append("  %-28s %7.2fs" % (result.key, result.wall))
    return "\n".join(lines)


def render_distribution(title, per_benchmark):
    """``{benchmark: {units: [speedups]}}`` -> Fig. 13-style summary rows."""
    headers = ["benchmark", "stages+RAs", "count", "min", "median", "max"]
    rows = []
    for name, dist in per_benchmark.items():
        for units, speeds in sorted(dist.items()):
            mid = speeds[len(speeds) // 2]
            rows.append([name, str(units), str(len(speeds)), min(speeds), mid, max(speeds)])
    return render_table(title, headers, rows)
