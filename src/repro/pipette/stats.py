"""Simulation statistics.

Collects what the paper's figures need: per-thread cycle attribution
(Fig. 10's issue / backend-stall / queue-stall / other breakdown), memory
hierarchy event counts (for the energy model, Fig. 11), and queue/RA
traffic (for sanity checks and the analysis in Sec. VII-A).
"""


#: ThreadStats fields a compiled engine may mirror in frame locals for the
#: duration of a dispatch. The contract (relied on by
#: :mod:`repro.pipette.batchpath`): mirrors must be flushed back before any
#: point where another task or the scheduler can observe the thread (every
#: ``yield``) and at completion. Accrual stays bit-identical to per-cycle
#: stepping because the same float additions run in the same order on the
#: same values — the mirrors only change *where* the running sum lives.
MIRROR_COUNTERS = ("uops", "loads", "stores", "branches", "mispredicts", "queue_ops")
MIRROR_STALLS = ("queue_stall", "mem_stall", "branch_stall", "barrier_stall")


class ThreadStats:
    """Per-thread counters; cycle components attribute *why* time passed."""

    __slots__ = (
        "name",
        "uops",
        "loads",
        "stores",
        "branches",
        "mispredicts",
        "queue_ops",
        "queue_stall",
        "mem_stall",
        "branch_stall",
        "barrier_stall",
        "start_cycle",
        "end_cycle",
    )

    def __init__(self, name):
        self.name = name
        self.uops = 0
        self.loads = 0
        self.stores = 0
        self.branches = 0
        self.mispredicts = 0
        self.queue_ops = 0
        self.queue_stall = 0.0
        self.mem_stall = 0.0
        self.branch_stall = 0.0
        self.barrier_stall = 0.0
        self.start_cycle = 0.0
        self.end_cycle = 0.0

    @property
    def total_cycles(self):
        return max(0.0, self.end_cycle - self.start_cycle)

    def breakdown(self):
        """Cycle components: (issue, backend/mem, queue, other).

        The measured stalls are subtracted from total thread time; the
        residual is time the thread was actively issuing (including issue
        bandwidth contention), which is the paper's "issuing micro-ops".

        The "other" bucket is additionally decomposed into its ``branch``
        and ``barrier`` parts (scaled proportionally when clamping hit), so
        ``other == branch + barrier`` up to float rounding. The four
        primary buckets partition the thread's total time; the sub-buckets
        are informational and must not be double-counted into totals.
        """
        total = self.total_cycles
        mem = min(self.mem_stall, total)
        queue = min(self.queue_stall, max(0.0, total - mem))
        other_raw = self.branch_stall + self.barrier_stall
        other = min(other_raw, max(0.0, total - mem - queue))
        issue = max(0.0, total - mem - queue - other)
        if other_raw > 0.0:
            branch = other * (self.branch_stall / other_raw)
            barrier = other - branch
        else:
            branch = barrier = 0.0
        return {
            "issue": issue,
            "backend": mem,
            "queue": queue,
            "other": other,
            "branch": branch,
            "barrier": barrier,
        }


class CacheStats:
    """Hit/miss counters for one cache level."""

    __slots__ = ("name", "hits", "misses", "prefetch_fills")

    def __init__(self, name):
        self.name = name
        self.hits = 0
        self.misses = 0
        self.prefetch_fills = 0

    @property
    def accesses(self):
        return self.hits + self.misses


class SimStats:
    """All counters from one simulation run."""

    def __init__(self):
        self.threads = []
        self.cache_levels = {}
        self.dram_accesses = 0
        self.ra_loads = 0
        self.queue_enqs = 0
        self.queue_deqs = 0
        self.ctrl_values = 0
        self.wall_cycles = 0.0
        self.queues = {}

    def new_thread(self, name):
        ts = ThreadStats(name)
        self.threads.append(ts)
        return ts

    def register_queue(self, label, queue):
        """Record one finished :class:`~repro.pipette.queues.HWQueue`'s
        traffic counters under ``label`` (e.g. ``"r0.q3"``)."""
        self.queues[label] = {
            "enqs": queue.total_enqs,
            "deqs": queue.total_deqs,
            "max_occupancy": queue.max_occupancy,
            "capacity": queue.capacity,
            "full_blocks": queue.full_blocks,
            "empty_blocks": queue.empty_blocks,
        }

    def cache(self, name):
        if name not in self.cache_levels:
            self.cache_levels[name] = CacheStats(name)
        return self.cache_levels[name]

    @property
    def total_uops(self):
        return sum(t.uops for t in self.threads)

    @property
    def total_loads(self):
        return sum(t.loads for t in self.threads)

    def cycle_breakdown(self):
        """Aggregate Fig. 10-style breakdown, scaled to wall-clock cycles.

        Sums per-thread components and rescales so the components total the
        run's wall time, giving a per-run bar comparable across variants
        once normalized to the serial baseline.
        """
        sums = {
            "issue": 0.0,
            "backend": 0.0,
            "queue": 0.0,
            "other": 0.0,
            "branch": 0.0,
            "barrier": 0.0,
        }
        for t in self.threads:
            for key, value in t.breakdown().items():
                sums[key] += value
        # The four primary buckets partition each thread's time; "branch"
        # and "barrier" only decompose "other" and stay out of the total.
        total = sums["issue"] + sums["backend"] + sums["queue"] + sums["other"]
        if total <= 0:
            return {k: 0.0 for k in sums}
        scale = self.wall_cycles / total
        return {k: v * scale for k, v in sums.items()}

    def summary(self):
        return {
            "wall_cycles": self.wall_cycles,
            "uops": self.total_uops,
            "loads": self.total_loads,
            "mispredicts": sum(t.mispredicts for t in self.threads),
            "queue_stall": sum(t.queue_stall for t in self.threads),
            "mem_stall": sum(t.mem_stall for t in self.threads),
            "branch_stall": sum(t.branch_stall for t in self.threads),
            "barrier_stall": sum(t.barrier_stall for t in self.threads),
            "dram_accesses": self.dram_accesses,
            "ra_loads": self.ra_loads,
            "queue_enqs": self.queue_enqs,
            "queue_deqs": self.queue_deqs,
            "queues": {label: dict(row) for label, row in self.queues.items()},
        }
