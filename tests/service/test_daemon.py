"""The daemon end to end: an in-process instance over a real unix socket."""

import asyncio
import contextlib
import json
import socket
import threading

import pytest

from repro import api
from repro.client import ServiceClient, ServiceError
from repro.service import REJECTED_EXIT_CODE, Daemon
from repro.service.ratelimit import RATE_LIMITED

KERNEL = """
#pragma phloem
void k(const int* restrict a, const int* restrict b, int* restrict out, int n) {
  for (int i = 0; i < n; i++) {
    int v = a[i];
    out[i] = b[v];
  }
}
"""


@contextlib.contextmanager
def serving(tmp_path, **kwargs):
    """A live daemon (inline executor) plus a connected client."""
    sock = str(tmp_path / "serve.sock")
    daemon = Daemon(socket_path=sock, workers=0, **kwargs)
    ready = threading.Event()
    thread = threading.Thread(
        target=lambda: asyncio.run(daemon.serve(ready=ready)), daemon=True
    )
    thread.start()
    assert ready.wait(10), "daemon never bound its socket"
    client = ServiceClient(socket_path=sock, client_id="test", timeout=30.0)
    client.wait_ready(timeout=10)
    try:
        yield client
    finally:
        with contextlib.suppress(ServiceError):
            client.shutdown()
        thread.join(10)
        assert not thread.is_alive(), "daemon did not shut down"


def test_ping_identifies_daemon(tmp_path):
    with serving(tmp_path) as client:
        payload = client.ping()
        assert payload["ok"] and payload["inline"]


def test_submit_matches_one_shot_output(tmp_path):
    request = api.MetricsRequest(bench="bfs", size=300, quiet=True)
    # Warm the caches, then capture the one-shot warm output.
    api.handle(request)
    warm = api.handle(request)
    with serving(tmp_path) as client:
        response = client.submit(request)
        assert response.ok
        assert response.output == warm.output
        assert type(response) is api.MetricsResponse


def test_submit_reports_shared_cache_hits(tmp_path, monkeypatch):
    from repro import cache

    # A genuinely cold start: fresh store, empty in-process memo (earlier
    # tests in this process may have compiled the same pipeline).
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    cache.reset()
    request = api.RunRequest(bench="cc", size=300, seed=11)
    with serving(tmp_path) as client:
        cold = client.submit(request)
        warm = client.submit(request)
    assert cold.ok and warm.ok
    assert cold.cache["pipeline"]["misses"] >= 1
    assert warm.cache["pipeline"]["hits"] >= 1
    assert warm.cache["pipeline"]["misses"] == 0
    assert warm.output == cold.output


def test_records_stream_before_final_response(tmp_path):
    request = api.MetricsRequest(bench="bfs", size=300, quiet=True)
    streamed = []
    with serving(tmp_path) as client:
        response = client.submit(request, on_record=streamed.append)
    assert response.ok and response.records
    assert streamed == response.records
    expected = [json.loads(line) for line in response.output.splitlines() if line.strip()]
    assert streamed == expected


def test_third_request_over_budget_is_rejected(tmp_path):
    request = api.CompileRequest(source=KERNEL, fmt="summary")
    with serving(tmp_path, rate=1e-9, burst=2.0) as client:
        assert client.submit(request).ok
        assert client.submit(request).ok
        rejected = client.submit(request)
        # A different identity still has its own untouched budget.
        other = ServiceClient(socket_path=client.socket_path, client_id="other")
        assert other.submit(request).ok
    assert not rejected.ok
    assert rejected.exit_code == REJECTED_EXIT_CODE
    assert rejected.error["code"] == RATE_LIMITED


def test_unsupported_verb_rejected(tmp_path):
    class BogusRequest:
        def to_wire(self):
            return {
                "schema": "repro.api/request",
                "version": 1,
                "verb": "frobnicate",
                "payload": {},
            }

    with serving(tmp_path) as client:
        response = client.submit(BogusRequest())
    assert response.exit_code == 2
    assert response.error["code"] == "unsupported-verb"


def test_toolchain_error_becomes_structured_response(tmp_path):
    request = api.CompileRequest(source="int broken(", fmt="summary")
    with serving(tmp_path) as client:
        response = client.submit(request)
    assert not response.ok
    assert response.error["code"] in ("toolchain-error", "internal-error")


def test_garbage_line_answered_with_bad_request(tmp_path):
    with serving(tmp_path) as client:
        raw = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        raw.settimeout(10)
        raw.connect(client.socket_path)
        raw.sendall(b"this is not json\n")
        reply = json.loads(raw.makefile("rb").readline())
        raw.close()
    assert reply["kind"] == "response"
    payload = reply["payload"]["payload"]
    assert payload["exit_code"] == 2
    assert payload["error"]["code"] == "bad-request"


def test_server_stats_count_requests(tmp_path):
    request = api.CompileRequest(source=KERNEL, fmt="summary")
    with serving(tmp_path) as client:
        client.submit(request)
        client.submit(request)
        stats = client.server_stats()
    assert stats["counts"]["requests"] == 2
    assert stats["counts"]["completed"] == 2
    assert stats["verbs"] == {"emit": 2}
    assert stats["governor"]["in_flight"] == {}


def test_server_stats_expose_telemetry_and_bucket_state(tmp_path):
    from repro.service import TELEMETRY_SCHEMA

    request = api.CompileRequest(source=KERNEL, fmt="summary")
    with serving(tmp_path) as client:
        client.submit(request)
        client.submit(request)
        stats = client.server_stats()
    assert stats["uptime_s"] >= 0
    telemetry = stats["telemetry"]
    assert telemetry["schema"] == TELEMETRY_SCHEMA
    emit = telemetry["verbs"]["emit"]
    assert emit["requests"] == 2
    assert emit["outcomes"]["completed"] == 2
    assert emit["latency"]["count"] == 2
    assert emit["latency"]["buckets"][-1] == {"le": "+Inf", "count": 2}
    assert emit["latency"]["sum_s"] > 0
    # Per-client token-bucket state: two tokens burned, none in flight.
    bucket = stats["governor"]["buckets"]["test"]
    assert bucket["in_flight"] == 0
    assert bucket["level"] <= stats["governor"]["limits"]["burst"]


def test_telemetry_counts_failures_and_rejections(tmp_path):
    good = api.CompileRequest(source=KERNEL, fmt="summary")
    bad = api.CompileRequest(source="int broken(", fmt="summary")
    with serving(tmp_path, rate=1e-9, burst=2.0) as client:
        assert client.submit(good).ok
        assert not client.submit(bad).ok
        rejected = client.submit(good)
        stats = client.server_stats()
    assert rejected.exit_code == REJECTED_EXIT_CODE
    emit = stats["telemetry"]["verbs"]["emit"]
    assert emit["requests"] == 3
    assert emit["outcomes"] == {"completed": 1, "failed": 1, "rejected": 1}
    # Rejections never open a latency window; admitted requests do.
    assert emit["latency"]["count"] == 2
    assert stats["telemetry"]["rejections"] == {RATE_LIMITED: 1}


def test_telemetry_scrape_round_trips_through_parser(tmp_path):
    from repro.service import parse_prometheus

    request = api.CompileRequest(source=KERNEL, fmt="summary")
    with serving(tmp_path) as client:
        client.submit(request)
        text = client.telemetry()
    samples = parse_prometheus(text)
    assert samples[
        ("repro_requests_total", (("outcome", "completed"), ("verb", "emit")))
    ] == 1
    assert samples[("repro_request_latency_seconds_count", (("verb", "emit"),))] == 1
    assert samples[
        ("repro_request_latency_seconds_bucket", (("le", "+Inf"), ("verb", "emit")))
    ] == 1
    assert samples[("repro_in_flight_requests", ())] == 0


@pytest.mark.slow
def test_cli_serve_submit_round_trip(tmp_path):
    """End to end through ``repro serve`` / ``repro submit`` subprocesses."""
    import os
    import subprocess
    import sys

    sock = str(tmp_path / "cli.sock")
    env = dict(os.environ, REPRO_CACHE_DIR=str(tmp_path / "cache"))
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (env.get("PYTHONPATH"), "src") if p
    )
    server = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--socket", sock, "--workers", "1"],
        env=env,
    )
    try:
        run = subprocess.run(
            [sys.executable, "-m", "repro", "submit", "--socket", sock,
             "--wait", "30", "demo", "bfs", "--size", "300"],
            env=env, capture_output=True, text=True, timeout=120,
        )
        assert run.returncode == 0, run.stderr
        assert "phloem" in run.stdout
        down = subprocess.run(
            [sys.executable, "-m", "repro", "submit", "--socket", sock, "--shutdown"],
            env=env, capture_output=True, text=True, timeout=30,
        )
        assert down.returncode == 0, down.stderr
        assert server.wait(timeout=30) == 0
    finally:
        if server.poll() is None:
            server.kill()
            server.wait()
