"""Lexer for the mini-C frontend.

Tokenizes the C subset Phloem's kernels use. ``#pragma`` lines become single
PRAGMA tokens (carrying the rest of the line), matching how the paper's
annotations (Table II) ride on top of plain C.
"""

from ..errors import ParseError

KEYWORDS = frozenset(
    [
        "void",
        "int",
        "long",
        "float",
        "double",
        "unsigned",
        "const",
        "restrict",
        "if",
        "else",
        "while",
        "for",
        "break",
        "continue",
        "return",
        "true",
        "false",
    ]
)

# Longest-match-first punctuation table.
_PUNCT = [
    "<<=",
    ">>=",
    "==",
    "!=",
    "<=",
    ">=",
    "&&",
    "||",
    "<<",
    ">>",
    "++",
    "--",
    "+=",
    "-=",
    "*=",
    "/=",
    "%=",
    "&=",
    "|=",
    "^=",
    "->",
    "+",
    "-",
    "*",
    "/",
    "%",
    "<",
    ">",
    "=",
    "!",
    "&",
    "|",
    "^",
    "~",
    "?",
    ":",
    ";",
    ",",
    "(",
    ")",
    "[",
    "]",
    "{",
    "}",
]


class Token:
    """A lexical token with source position for error reporting."""

    __slots__ = ("kind", "value", "line", "col")

    def __init__(self, kind, value, line, col):
        self.kind = kind  # 'ident', 'number', 'punct', 'keyword', 'pragma', 'eof'
        self.value = value
        self.line = line
        self.col = col

    def __repr__(self):
        return "Token(%s, %r)" % (self.kind, self.value)


def tokenize(source):
    """Tokenize ``source`` into a list of Tokens ending with an 'eof' token."""
    tokens = []
    i = 0
    line = 1
    col = 1
    n = len(source)

    def error(msg):
        raise ParseError(msg, line, col)

    while i < n:
        ch = source[i]

        if ch == "\n":
            i += 1
            line += 1
            col = 1
            continue
        if ch in " \t\r":
            i += 1
            col += 1
            continue

        # Comments.
        if source.startswith("//", i):
            while i < n and source[i] != "\n":
                i += 1
            continue
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end < 0:
                error("unterminated block comment")
            for c in source[i : end + 2]:
                if c == "\n":
                    line += 1
                    col = 1
                else:
                    col += 1
            i = end + 2
            continue

        # Pragmas and other preprocessor lines.
        if ch == "#":
            eol = source.find("\n", i)
            if eol < 0:
                eol = n
            text = source[i:eol].strip()
            if text.startswith("#pragma"):
                tokens.append(Token("pragma", text[len("#pragma") :].strip(), line, col))
            elif text.startswith("#include") or text.startswith("#define"):
                pass  # tolerated and ignored: kernels may carry headers
            else:
                error("unsupported preprocessor directive %r" % text)
            i = eol
            continue

        # Numbers (decimal ints and floats; hex ints).
        if ch.isdigit() or (ch == "." and i + 1 < n and source[i + 1].isdigit()):
            start = i
            if source.startswith("0x", i) or source.startswith("0X", i):
                i += 2
                while i < n and source[i] in "0123456789abcdefABCDEF":
                    i += 1
                value = int(source[start:i], 16)
            else:
                seen_dot = False
                seen_exp = False
                while i < n:
                    c = source[i]
                    if c.isdigit():
                        i += 1
                    elif c == "." and not seen_dot and not seen_exp:
                        seen_dot = True
                        i += 1
                    elif c in "eE" and not seen_exp and i + 1 < n and (source[i + 1].isdigit() or source[i + 1] in "+-"):
                        seen_exp = True
                        i += 2 if source[i + 1] in "+-" else 1
                    else:
                        break
                text = source[start:i]
                value = float(text) if (seen_dot or seen_exp) else int(text)
            # Swallow C integer suffixes.
            while i < n and source[i] in "uUlLfF":
                if source[i] in "fF" and isinstance(value, int):
                    value = float(value)
                i += 1
            tokens.append(Token("number", value, line, col))
            col += i - start
            continue

        # Identifiers and keywords.
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (source[i].isalnum() or source[i] == "_"):
                i += 1
            word = source[start:i]
            if word in KEYWORDS:
                tokens.append(Token("keyword", word, line, col))
            else:
                tokens.append(Token("ident", word, line, col))
            col += i - start
            continue

        # Punctuation.
        for punct in _PUNCT:
            if source.startswith(punct, i):
                tokens.append(Token("punct", punct, line, col))
                i += len(punct)
                col += len(punct)
                break
        else:
            error("unexpected character %r" % ch)

    tokens.append(Token("eof", None, line, col))
    return tokens
