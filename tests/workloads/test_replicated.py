"""Replicated pipelines: distribution, counting handlers, correctness."""

import pytest

from repro.pipette.config import CacheConfig, MachineConfig
from repro.runtime import run_replicated
from repro.workloads import bfs, cc, prd, radii, replicated


@pytest.fixture(scope="module")
def repl_config():
    return MachineConfig(
        cores=2,
        l1=CacheConfig(4 * 1024, 4, 4),
        l2=CacheConfig(16 * 1024, 8, 12),
        l3_per_core=CacheConfig(64 * 1024, 16, 40),
    )


def _run(app, graph, replicas, config, builder=None):
    builder = builder or replicated.BUILDERS[app]
    pipelines = [builder(rid, replicas) for rid in range(replicas)]
    envs = replicated.make_envs(app, graph, replicas)
    return run_replicated(
        [(pipelines[r], envs[r][0], envs[r][1], r % config.cores) for r in range(replicas)],
        config,
    )


def test_owner_of_covers_range():
    chunk = 10
    assert replicated.owner_of(0, chunk, 4) == 0
    assert replicated.owner_of(39, chunk, 4) == 3
    assert replicated.owner_of(999, chunk, 4) == 3  # clamped


def test_bfs_replicated(micro_graph, repl_config):
    result = _run("bfs", micro_graph, 2, repl_config)
    assert result.arrays["distances"] == bfs.reference(micro_graph)


def test_cc_replicated(micro_graph, repl_config):
    result = _run("cc", micro_graph, 2, repl_config)
    assert result.arrays["labels"] == cc.reference(micro_graph)


def test_radii_replicated(micro_graph, repl_config):
    result = _run("radii", micro_graph, 2, repl_config)
    assert result.arrays["radii_arr"] == radii.reference(micro_graph)


def test_prd_replicated(micro_graph, repl_config):
    result = _run("prd", micro_graph, 2, repl_config)
    expected = prd.reference(micro_graph)
    got = result.arrays["rank"]
    assert all(abs(a - b) <= 1e-9 * max(1, abs(b)) for a, b in zip(got, expected))


def test_bfs_nodist_correct_but_unbalanced(micro_graph, repl_config):
    result = _run("bfs", micro_graph, 2, repl_config, builder=replicated.bfs_replicated_nodist)
    assert result.arrays["distances"] == bfs.reference(micro_graph)


def test_four_replicas(micro_graph, repl_config):
    from dataclasses import replace

    config = replace(repl_config, cores=4)
    result = _run("bfs", micro_graph, 4, config)
    assert result.arrays["distances"] == bfs.reference(micro_graph)


def test_make_envs_partitions_initial_fringe(micro_graph):
    envs = replicated.make_envs("cc", micro_graph, 3)
    total = sum(scalars["fringe_size_init"] for _, scalars in envs)
    assert total == micro_graph.n
    assert all(scalars["total_init"] == micro_graph.n for _, scalars in envs)
    # Global arrays are shared by identity.
    assert envs[0][0]["labels"] is envs[1][0]["labels"]
    assert envs[0][0]["fringe0"] is not envs[1][0]["fringe0"]


def test_shared_arrays_shared_after_run(micro_graph, repl_config):
    result = _run("bfs", micro_graph, 2, repl_config)
    assert result.replica_arrays[0]["distances"] is result.replica_arrays[1]["distances"]
