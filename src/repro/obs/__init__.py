"""Observability: cycle-domain tracing, pass instrumentation, metrics.

The analysis story of the paper (Fig. 10's cycle breakdowns, Sec. VII-A's
queue and RA traffic) is built on aggregate counters; this package adds the
*disaggregated* view needed to actually tune a pipeline:

* :mod:`repro.obs.tracer` — an opt-in, near-zero-cost-when-off cycle-domain
  event tracer threaded through the Pipette simulator (scheduler spans,
  stall intervals by bucket, queue occupancy samples, RA loads);
* :mod:`repro.obs.chrometrace` — exports a trace to Chrome trace-event JSON
  (loadable in ``chrome://tracing`` or Perfetto) with one track per stage
  thread and counter tracks for queue occupancy;
* :mod:`repro.obs.timeline` — a pure-Python summarizer: per-stage
  utilization, the bottleneck stage per time window, top-k stall intervals;
* :mod:`repro.obs.passes` — compiler pass instrumentation (wall time, IR
  deltas, optional before/after IR snapshots);
* :mod:`repro.obs.search` — records what the profile-guided search scored
  and why the winner won;
* :mod:`repro.obs.record` — versioned, schema'd ``RunRecord`` dicts
  (JSON/JSONL) unifying simulator stats, cache hit rates, and pass timings;
* :mod:`repro.obs.report` — the unified experiment report (``repro
  report``): walks a results directory of RunRecords, perf baselines,
  lint diags, timelines, and telemetry snapshots into one
  :class:`~repro.obs.report.ExperimentReport` with markdown and HTML
  renderers;
* :mod:`repro.obs.log` — the one diagnostics funnel (quiet-able stderr).

Everything here is opt-in: with no :class:`Tracer` attached, the simulator
allocates no event buffers and figure output stays byte-identical.
"""

from .chrometrace import export_chrome_trace, validate_chrome_trace, write_chrome_trace
from .log import get_quiet, is_quiet, log, set_quiet
from .passes import PassProfiler
from .record import (
    RECORD_SCHEMA,
    RECORD_VERSION,
    merge_records,
    read_jsonl,
    records_from_suite,
    run_record,
    write_jsonl,
)
from .report import (
    REPORT_SCHEMA,
    REPORT_VERSION,
    ExperimentReport,
    collect,
    render_html,
    render_markdown,
    spark,
)
from .search import SearchRecorder
from .timeline import render_timeline, summarize_timeline
from .tracer import Tracer

__all__ = [
    "Tracer",
    "export_chrome_trace",
    "validate_chrome_trace",
    "write_chrome_trace",
    "summarize_timeline",
    "render_timeline",
    "PassProfiler",
    "SearchRecorder",
    "RECORD_SCHEMA",
    "RECORD_VERSION",
    "run_record",
    "records_from_suite",
    "merge_records",
    "write_jsonl",
    "read_jsonl",
    "ExperimentReport",
    "collect",
    "render_markdown",
    "render_html",
    "spark",
    "REPORT_SCHEMA",
    "REPORT_VERSION",
    "log",
    "set_quiet",
    "get_quiet",
    "is_quiet",
]
