"""Textual dump of Phloem IR — the reproduction's analogue of ``-emit-ir``.

The printed form is for humans (tests assert on fragments of it, and the
examples print it to show what the compiler did); it is not reparsed.
"""

from .values import is_const


def _fmt_operand(op):
    if is_const(op):
        return repr(op)
    return str(op)


def format_stmt(stmt):
    """One-line summary of a single statement (no nested bodies)."""
    k = stmt.kind
    if k == "assign":
        return "%s = %s(%s)" % (stmt.dst, stmt.op, ", ".join(_fmt_operand(a) for a in stmt.args))
    if k == "load":
        return "%s = load %s[%s]" % (stmt.dst, stmt.array, _fmt_operand(stmt.index))
    if k == "store":
        return "store %s[%s] = %s" % (stmt.array, _fmt_operand(stmt.index), _fmt_operand(stmt.value))
    if k == "prefetch":
        return "prefetch %s[%s]" % (stmt.array, _fmt_operand(stmt.index))
    if k == "enq":
        return "enq(q%d, %s)" % (stmt.queue, _fmt_operand(stmt.value))
    if k == "enq_ctrl":
        return "enq_ctrl(q%d, %s)" % (stmt.queue, stmt.ctrl.name)
    if k == "deq":
        return "%s = deq(q%d)" % (stmt.dst, stmt.queue)
    if k == "peek":
        return "%s = peek(q%d)" % (stmt.dst, stmt.queue)
    if k == "is_control":
        return "%s = is_control(%s)" % (stmt.dst, _fmt_operand(stmt.src))
    if k == "for":
        return "for %s in [%s, %s) step %s" % (
            stmt.var,
            _fmt_operand(stmt.lo),
            _fmt_operand(stmt.hi),
            _fmt_operand(stmt.step),
        )
    if k == "loop":
        return "loop"
    if k == "if":
        return "if %s" % _fmt_operand(stmt.cond)
    if k == "break":
        return "break" if stmt.levels == 1 else "break %d" % stmt.levels
    if k == "continue":
        return "continue"
    if k == "barrier":
        return "barrier(%s)" % stmt.tag
    if k == "read_shared":
        return "%s = shared[%s]" % (stmt.dst, stmt.var)
    if k == "write_shared":
        return "shared[%s] = %s" % (stmt.var, _fmt_operand(stmt.value))
    if k == "atomic_rmw":
        text = "atomic_%s %s[%s], %s" % (stmt.op, stmt.array, _fmt_operand(stmt.index), _fmt_operand(stmt.value))
        return text if stmt.dst is None else "%s = %s" % (stmt.dst, text)
    if k == "enq_dist":
        return "enq_dist(q%d@%s, %s)" % (stmt.queue, _fmt_operand(stmt.replica), _fmt_operand(stmt.value))
    if k == "enq_ctrl_dist":
        return "enq_ctrl_dist(q%d@*, %s)" % (stmt.queue, stmt.ctrl.name)
    if k == "call":
        call = "%s(%s)" % (stmt.func, ", ".join(_fmt_operand(a) for a in stmt.args))
        return call if stmt.dst is None else "%s = %s" % (stmt.dst, call)
    if k == "comment":
        return "# %s" % stmt.text
    return "<%s>" % k


def format_body(body, indent=0):
    """Multi-line dump of a statement list."""
    lines = []
    pad = "  " * indent
    for stmt in body:
        lines.append(pad + format_stmt(stmt))
        if stmt.kind == "if":
            lines.append(format_body(stmt.then_body, indent + 1))
            if stmt.else_body:
                lines.append(pad + "else")
                lines.append(format_body(stmt.else_body, indent + 1))
        elif stmt.kind in ("for", "loop"):
            lines.append(format_body(stmt.body, indent + 1))
    return "\n".join(line for line in lines if line)


def format_function(function):
    """Multi-line dump of a serial Function (header + body)."""
    header = "func %s(%s) arrays(%s)" % (
        function.name,
        ", ".join(function.scalar_params),
        ", ".join(sorted(function.arrays)),
    )
    return header + "\n" + format_body(function.body, 1)


def format_stage(stage):
    """Multi-line dump of one stage, including its handlers."""
    lines = ["stage %d: %s" % (stage.index, stage.name)]
    lines.append(format_body(stage.body, 1))
    for qid in sorted(stage.handlers):
        lines.append("  handler(q%d):" % qid)
        lines.append(format_body(stage.handlers[qid], 2))
    return "\n".join(lines)


def format_pipeline(pipeline):
    """Multi-line dump of a whole pipeline (queues, RAs, stages)."""
    lines = ["pipeline %s" % pipeline.name]
    for q in sorted(pipeline.queues.values(), key=lambda q: q.qid):
        lines.append("  " + repr(q))
    for ra in pipeline.ras:
        lines.append("  " + repr(ra))
    for stage in pipeline.stages:
        lines.append(format_stage(stage))
    return "\n".join(lines)
