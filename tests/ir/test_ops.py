"""Operator semantics: the single source of truth the interpreter uses."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ir import ops


class TestArity:
    def test_binary(self):
        assert ops.arity("add") == 2

    def test_unary(self):
        assert ops.arity("mov") == 1

    def test_ternary(self):
        assert ops.arity("select") == 3

    def test_unknown_raises(self):
        with pytest.raises(ValueError):
            ops.arity("bogus")


class TestIntegerSemantics:
    @pytest.mark.parametrize(
        "op,a,b,expected",
        [
            ("add", 3, 4, 7),
            ("sub", 3, 4, -1),
            ("mul", -3, 4, -12),
            ("and", 0b1100, 0b1010, 0b1000),
            ("or", 0b1100, 0b1010, 0b1110),
            ("xor", 0b1100, 0b1010, 0b0110),
            ("shl", 1, 4, 16),
            ("shr", 16, 4, 1),
            ("min", 3, -2, -2),
            ("max", 3, -2, 3),
        ],
    )
    def test_arith(self, op, a, b, expected):
        assert ops.evaluate(op, [a, b]) == expected

    @pytest.mark.parametrize(
        "a,b,expected",
        [(7, 2, 3), (-7, 2, -3), (7, -2, -3), (-7, -2, 3)],
    )
    def test_div_truncates_toward_zero(self, a, b, expected):
        """C semantics, not Python floor division."""
        assert ops.evaluate("div", [a, b]) == expected

    @pytest.mark.parametrize(
        "a,b,expected",
        [(7, 2, 1), (-7, 2, -1), (7, -2, 1), (-7, -2, -1)],
    )
    def test_mod_follows_dividend(self, a, b, expected):
        assert ops.evaluate("mod", [a, b]) == expected

    def test_mod_floats_rejected(self):
        with pytest.raises(TypeError):
            ops.evaluate("mod", [1.5, 2])


class TestComparisons:
    @pytest.mark.parametrize(
        "op,a,b,expected",
        [
            ("lt", 1, 2, 1),
            ("lt", 2, 2, 0),
            ("le", 2, 2, 1),
            ("gt", 3, 2, 1),
            ("ge", 2, 3, 0),
            ("eq", 5, 5, 1),
            ("ne", 5, 5, 0),
        ],
    )
    def test_compare(self, op, a, b, expected):
        assert ops.evaluate(op, [a, b]) == expected

    def test_compare_ops_set(self):
        assert "lt" in ops.COMPARE_OPS
        assert "add" not in ops.COMPARE_OPS


class TestUnaryAndSelect:
    def test_neg(self):
        assert ops.evaluate("neg", [5]) == -5

    def test_not(self):
        assert ops.evaluate("not", [0]) == 1
        assert ops.evaluate("not", [7]) == 0

    def test_mov(self):
        assert ops.evaluate("mov", [42]) == 42

    def test_select(self):
        assert ops.evaluate("select", [1, 10, 20]) == 10
        assert ops.evaluate("select", [0, 10, 20]) == 20

    def test_unknown_op(self):
        with pytest.raises(ValueError):
            ops.evaluate("nope", [1])


class TestPairs:
    def test_pack_unpack_roundtrip(self):
        packed = ops.evaluate("pack2", [7, 9])
        assert ops.evaluate("fst", [packed]) == 7
        assert ops.evaluate("snd", [packed]) == 9

    @given(st.integers(), st.floats(allow_nan=False))
    def test_pack_roundtrip_property(self, a, b):
        packed = ops.evaluate("pack2", [a, b])
        assert ops.evaluate("fst", [packed]) == a
        assert ops.evaluate("snd", [packed]) == b


@given(st.integers(-(2**40), 2**40), st.integers(-(2**40), 2**40))
def test_add_sub_inverse(a, b):
    assert ops.evaluate("sub", [ops.evaluate("add", [a, b]), b]) == a


@given(st.integers(-(2**30), 2**30), st.integers(1, 2**20))
def test_divmod_identity(a, b):
    q = ops.evaluate("div", [a, b])
    r = ops.evaluate("mod", [a, b])
    assert q * b + r == a
    assert abs(r) < b


@given(st.integers(), st.integers())
def test_minmax_cover(a, b):
    lo = ops.evaluate("min", [a, b])
    hi = ops.evaluate("max", [a, b])
    assert {lo, hi} == {a, b}
    assert lo <= hi
