"""The static pipeline-safety analyzer.

Two halves mirror the analyzer's contract:

* a table of known-bad pipelines/kernels, each asserting the *exact*
  stable diagnostic code (and span, when the statements carry one) the
  analyzer must report;
* a lint-clean sweep: every shipped benchmark kernel, every hand-written
  manual pipeline, and the example kernels produce zero findings, and
  ``--verify-each`` compilation adds no failures.
"""

import pytest

from repro import ir
from repro.analysis.sanitize import (
    CONFLICTING,
    READ_ONLY,
    SINGLE_WRITER,
    TOP,
    _max_burst,
    body_effects,
    classify_cross_stage,
    lint_source,
    sanitize_pipeline,
)
from repro.diag import Span
from repro.errors import SanitizeError


def _pipe(stages, queues, arrays=None, shared=(), meta=None):
    arrays = arrays if arrays is not None else {"a": ir.ArrayDecl("a")}
    return ir.PipelineProgram(
        "p", stages, queues, [], arrays, ["n"], shared_vars=shared, meta=meta
    )


def _q(qid, prod, cons, capacity=24):
    return ir.QueueSpec(qid, prod, cons, capacity=capacity)


# ---------------------------------------------------------------------------
# Known-bad pipelines, one per diagnostic code


def _bad_phl101():
    b0 = ir.IRBuilder()
    b0.at(Span(10))
    with b0.for_("i", 0, 4):
        b0.enq(0, "i")
    s0 = ir.StageProgram(0, "p", b0.finish())
    s1 = ir.StageProgram(1, "c", [ir.Assign("x", "mov", [0])])
    return _pipe([s0, s1], [_q(0, ("stage", 0), ("stage", 1))])


def _bad_phl102():
    s0 = ir.StageProgram(0, "p", [ir.Assign("x", "mov", [0])])
    b1 = ir.IRBuilder()
    with b1.for_("i", 0, 4):
        b1.deq(0)
    s1 = ir.StageProgram(1, "c", b1.finish())
    return _pipe([s0, s1], [_q(0, ("stage", 0), ("stage", 1))])


def _bad_phl103():
    # Consumer terminates on a control value the producer never sends.
    b0 = ir.IRBuilder()
    with b0.for_("i", 0, 4):
        b0.enq(0, "i")
    s0 = ir.StageProgram(0, "p", b0.finish())
    b1 = ir.IRBuilder()
    b1.at(Span(31))
    with b1.loop():
        v = b1.deq(0)
        c = b1.is_control(v)
        with b1.if_(c):
            b1.break_()
    s1 = ir.StageProgram(1, "c", b1.finish())
    return _pipe([s0, s1], [_q(0, ("stage", 0), ("stage", 1))])


def _bad_phl104():
    # Producer enqueues on one branch arm only; consumer dequeues exactly.
    b0 = ir.IRBuilder()
    with b0.for_("i", 0, 4):
        x = b0.binop("gt", "i", 1)
        b0.at(Span(44))
        with b0.if_(x):
            b0.enq(0, "i")
        b0.at(None)
    s0 = ir.StageProgram(0, "p", b0.finish())
    b1 = ir.IRBuilder()
    with b1.for_("i", 0, 4):
        b1.deq(0)
    s1 = ir.StageProgram(1, "c", b1.finish())
    return _pipe([s0, s1], [_q(0, ("stage", 0), ("stage", 1))])


def _bad_phl105_exact():
    b0 = ir.IRBuilder()
    b0.at(Span(55))
    with b0.for_("i", 0, 4):
        b0.enq(0, "i")
    s0 = ir.StageProgram(0, "p", b0.finish())
    b1 = ir.IRBuilder()
    with b1.for_("i", 0, 5):
        b1.deq(0)
    s1 = ir.StageProgram(1, "c", b1.finish())
    return _pipe([s0, s1], [_q(0, ("stage", 0), ("stage", 1))])


def _bad_phl105_rate():
    # Same symbolic loop on both sides, but 1 enqueue vs 2 dequeues per
    # iteration: trip counts cancel, the rates must match.
    b0 = ir.IRBuilder()
    with b0.for_("i", 0, "n"):
        b0.enq(0, "i")
    s0 = ir.StageProgram(0, "p", b0.finish())
    b1 = ir.IRBuilder()
    with b1.for_("i", 0, "n"):
        b1.deq(0)
        b1.deq(0)
    s1 = ir.StageProgram(1, "c", b1.finish())
    return _pipe([s0, s1], [_q(0, ("stage", 0), ("stage", 1))])


def _bad_phl202():
    # Request-response cycle whose burst (100) exceeds the cycle's total
    # queue credit (4 + 4).
    b0 = ir.IRBuilder()
    with b0.for_("i", 0, 100):
        b0.enq(0, "i")
    with b0.for_("j", 0, 100):
        b0.deq(1)
    s0 = ir.StageProgram(0, "p", b0.finish())
    b1 = ir.IRBuilder()
    with b1.for_("i", 0, 100):
        v = b1.deq(0)
        b1.enq(1, v)
    s1 = ir.StageProgram(1, "c", b1.finish())
    return _pipe(
        [s0, s1],
        [_q(0, ("stage", 0), ("stage", 1), 4), _q(1, ("stage", 1), ("stage", 0), 4)],
    )


def _bad_phl203():
    # Producer fills q0 (capacity 2) with 8 tokens before feeding q1, but
    # the consumer blocks on q1 first.
    b0 = ir.IRBuilder()
    with b0.for_("i", 0, 8):
        b0.enq(0, "i")
    b0.enq(1, 1)
    s0 = ir.StageProgram(0, "p", b0.finish())
    b1 = ir.IRBuilder()
    b1.deq(1)
    with b1.for_("j", 0, 8):
        b1.deq(0)
    s1 = ir.StageProgram(1, "c", b1.finish())
    return _pipe(
        [s0, s1],
        [_q(0, ("stage", 0), ("stage", 1), 2), _q(1, ("stage", 0), ("stage", 1), 2)],
    )


def _bad_phl301():
    b0 = ir.IRBuilder()
    b0.at(Span(70))
    b0.store("@a", 0, 1)
    s0 = ir.StageProgram(0, "w1", b0.finish())
    s1 = ir.StageProgram(1, "w2", [ir.Store("@a", 1, 2)])
    return _pipe([s0, s1], [])


def _bad_phl302():
    b0 = ir.IRBuilder()
    b0.at(Span(80))
    b0.load("@a", 0)
    s0 = ir.StageProgram(0, "r", b0.finish())
    s1 = ir.StageProgram(1, "w", [ir.Store("@a", 0, 1)])
    return _pipe([s0, s1], [])


def _bad_phl304():
    s0 = ir.StageProgram(0, "w", [ir.WriteShared("fs", 1)])
    s1 = ir.StageProgram(1, "r", [ir.ReadShared("x", "fs")])
    return _pipe([s0, s1], [], shared=("fs",))


KNOWN_BAD = [
    pytest.param(_bad_phl101, ["PHL101"], 10, id="PHL101-never-consumed"),
    pytest.param(_bad_phl102, ["PHL102"], None, id="PHL102-never-produced"),
    pytest.param(_bad_phl103, ["PHL103"], 31, id="PHL103-missing-sentinel"),
    pytest.param(_bad_phl104, ["PHL104"], 44, id="PHL104-conditional-enq"),
    pytest.param(_bad_phl105_exact, ["PHL105"], 55, id="PHL105-count-mismatch"),
    pytest.param(_bad_phl105_rate, ["PHL105"], None, id="PHL105-rate-mismatch"),
    pytest.param(_bad_phl202, ["PHL201", "PHL202"], None, id="PHL202-infeasible-cycle"),
    pytest.param(_bad_phl203, ["PHL203"], None, id="PHL203-fanin-order"),
    pytest.param(_bad_phl301, ["PHL301"], 70, id="PHL301-write-write"),
    pytest.param(_bad_phl302, ["PHL302"], 80, id="PHL302-read-write"),
    pytest.param(_bad_phl304, ["PHL304"], None, id="PHL304-shared-no-barrier"),
]


class TestKnownBad:
    @pytest.mark.parametrize("build, codes, span_line", KNOWN_BAD)
    def test_exact_codes_and_spans(self, build, codes, span_line):
        diags = sanitize_pipeline(build())
        assert sorted(diags.codes()) == sorted(codes)
        if span_line is not None:
            spanned = [d for d in diags if d.span is not None]
            assert spanned, "expected a source span on the diagnostic"
            assert spanned[0].span.line == span_line
        for d in diags:
            assert d.where or d.span is not None  # always actionable

    def test_compiler_rejects_bad_pipeline(self):
        # The same findings abort compilation when they come out of the
        # always-on compile-time check.
        diags = sanitize_pipeline(_bad_phl105_exact())
        with pytest.raises(SanitizeError) as excinfo:
            diags.raise_if_errors()
        assert "PHL105" in str(excinfo.value)


class TestKnownBadMiniC:
    def test_parse_error_is_phl002(self):
        diags = lint_source("void broken(int n { }", file="k.c")
        (d,) = list(diags)
        assert d.code == "PHL002"
        assert d.span is not None and d.span.file == "k.c"

    def test_lowering_error_is_phl003(self):
        source = "#pragma phloem\nvoid k(int n) {\n  #pragma phloem\n  n = 1;\n}\n"
        diags = lint_source(source)
        (d,) = list(diags)
        assert d.code == "PHL003"
        assert d.span is not None and d.span.line == 3

    def test_replicated_non_commutative_reduction_is_phl303(self):
        source = (
            "#pragma phloem\n"
            "#pragma replicate 2\n"
            "void k(int n, const int* restrict idx, const int* restrict w,\n"
            "       int* restrict acc) {\n"
            "  for (int i = 0; i < n; i++) {\n"
            "    int j = idx[i];\n"
            "    acc[j] = acc[j] - w[i];\n"
            "  }\n"
            "}\n"
        )
        diags = lint_source(source)
        assert "PHL303" in diags.codes()
        assert not diags.has_errors  # a lint, not a hard error
        d = next(d for d in diags if d.code == "PHL303")
        assert d.span is not None and d.span.line == 7

    def test_commutative_reduction_is_clean(self):
        source = (
            "#pragma phloem\n"
            "#pragma replicate 2\n"
            "void k(int n, const int* restrict idx, const int* restrict w,\n"
            "       int* restrict acc) {\n"
            "  for (int i = 0; i < n; i++) {\n"
            "    int j = idx[i];\n"
            "    acc[j] = acc[j] + w[i];\n"
            "  }\n"
            "}\n"
        )
        assert len(lint_source(source)) == 0


class TestNegativeSpace:
    """Constructs near the bad patterns that must stay clean."""

    def test_prefetch_of_written_array_is_allowed(self):
        # The paper's resolution of the Fig. 4 race: other stages may
        # prefetch a written array, just not load it.
        s0 = ir.StageProgram(0, "pf", [ir.Prefetch("@a", 0)])
        s1 = ir.StageProgram(1, "w", [ir.Store("@a", 0, 1)])
        assert len(sanitize_pipeline(_pipe([s0, s1], []))) == 0

    def test_ctrl_terminated_consumer_with_sentinel_is_clean(self):
        b0 = ir.IRBuilder()
        with b0.for_("i", 0, 4):
            b0.enq(0, "i")
        b0.enq_ctrl(0, "DONE")
        s0 = ir.StageProgram(0, "p", b0.finish())
        b1 = ir.IRBuilder()
        with b1.loop():
            v = b1.deq(0)
            c = b1.is_control(v)
            with b1.if_(c):
                b1.break_()
        s1 = ir.StageProgram(1, "c", b1.finish())
        pipe = _pipe([s0, s1], [_q(0, ("stage", 0), ("stage", 1))])
        assert len(sanitize_pipeline(pipe)) == 0

    def test_handler_forwarding_ctrl_counts_as_sentinel(self):
        # The manual-pipeline idiom: a handler enq's %ctrl downstream.
        b0 = ir.IRBuilder()
        with b0.for_("i", 0, 4):
            b0.enq(0, "i")
        b0.enq_ctrl(0, "DONE")
        s0 = ir.StageProgram(0, "p", b0.finish())
        b1 = ir.IRBuilder()
        with b1.loop():
            v = b1.deq(0)
            b1.enq(1, v)
        s1 = ir.StageProgram(
            1, "f", b1.finish(), handlers={0: [ir.Enq(1, "%ctrl"), ir.Break(1)]}
        )
        b2 = ir.IRBuilder()
        with b2.loop():
            w = b2.deq(1)
            c = b2.is_control(w)
            with b2.if_(c):
                b2.break_()
        s2 = ir.StageProgram(2, "c", b2.finish())
        pipe = _pipe(
            [s0, s1, s2],
            [_q(0, ("stage", 0), ("stage", 1)), _q(1, ("stage", 1), ("stage", 2))],
        )
        assert len(sanitize_pipeline(pipe)) == 0

    def test_feasible_cycle_warns_but_is_not_an_error(self):
        # Lock-step request/response: one token in flight per direction.
        b0 = ir.IRBuilder()
        with b0.for_("i", 0, 4):
            b0.enq(0, "i")
            b0.deq(1)
        s0 = ir.StageProgram(0, "p", b0.finish())
        b1 = ir.IRBuilder()
        with b1.for_("i", 0, 4):
            v = b1.deq(0)
            b1.enq(1, v)
        s1 = ir.StageProgram(1, "c", b1.finish())
        pipe = _pipe(
            [s0, s1],
            [_q(0, ("stage", 0), ("stage", 1), 4), _q(1, ("stage", 1), ("stage", 0), 4)],
        )
        diags = sanitize_pipeline(pipe)
        assert diags.codes() == ["PHL201"]
        assert not diags.has_errors

    def test_shared_cell_across_barrier_is_clean(self):
        s0 = ir.StageProgram(0, "w", [ir.WriteShared("fs", 1), ir.Barrier("phase")])
        s1 = ir.StageProgram(1, "r", [ir.Barrier("phase"), ir.ReadShared("x", "fs")])
        assert len(sanitize_pipeline(_pipe([s0, s1], [], shared=("fs",)))) == 0


class TestAbstractDomain:
    def test_counted_loops_multiply(self):
        b = ir.IRBuilder()
        with b.for_("i", 0, 3):
            with b.for_("j", 0, 5):
                b.enq(0, "j")
        eff = body_effects(b.finish())
        assert eff[0].enq == 15

    def test_breaking_loop_degrades_to_top(self):
        b = ir.IRBuilder()
        with b.for_("i", 0, 3):
            b.enq(0, "i")
            with b.if_(b.binop("gt", "i", 1)):
                b.break_()
        eff = body_effects(b.finish())
        assert eff[0].enq is TOP

    def test_max_burst_resets_on_dequeue(self):
        b = ir.IRBuilder()
        with b.for_("i", 0, 100):
            b.enq(0, "i")
            b.deq(1)
        assert _max_burst(b.finish(), 0, 1) == 2  # tail + next head
        b2 = ir.IRBuilder()
        with b2.for_("i", 0, 100):
            b2.enq(0, "i")
        assert _max_burst(b2.finish(), 0, 1) == 100


class TestClassification:
    def test_classify_cross_stage_verdicts(self):
        b0 = ir.IRBuilder()
        b0.load("@ro", 0)
        b0.store("@own", 0, 1)
        b0.load("@own", 0)
        b0.store("@bad", 0, 1)
        s0 = ir.StageProgram(0, "a", b0.finish())
        b1 = ir.IRBuilder()
        b1.load("@ro", 1)
        b1.prefetch("@own", 1)
        b1.load("@bad", 1)
        s1 = ir.StageProgram(1, "b", b1.finish())
        arrays = {n: ir.ArrayDecl(n) for n in ("ro", "own", "bad")}
        verdicts = classify_cross_stage(_pipe([s0, s1], [], arrays=arrays))
        assert verdicts["@ro"] == READ_ONLY
        assert verdicts["@own"] == SINGLE_WRITER
        assert verdicts["@bad"] == CONFLICTING

    def test_non_restrict_arrays_share_a_class(self):
        arrays = {
            "x": ir.ArrayDecl("x", restrict=False),
            "y": ir.ArrayDecl("y", restrict=False),
        }
        s0 = ir.StageProgram(0, "w", [ir.Store("@x", 0, 1)])
        s1 = ir.StageProgram(1, "r", [ir.Load("v", "@y", 0)])
        diags = sanitize_pipeline(_pipe([s0, s1], [], arrays=arrays))
        assert "PHL302" in diags.codes()
