"""Pseudo-C code generation (the source-to-source output surface).

The paper's Phloem is a source-to-source compiler whose output is compiled
with ``gcc -O3``. In this reproduction the executable artifact is the IR
itself (the simulator interprets it), and this module renders the same
pipelines as readable C-style text — one function per stage, Pipette
intrinsics (``enq``/``deq``/``enq_ctrl``/handler setup) spelled like
Table I — so emitted code can be inspected, diffed, and documented.
"""

from ..ir.values import is_const

_CMP = {"lt": "<", "le": "<=", "gt": ">", "ge": ">=", "eq": "==", "ne": "!="}
_ARITH = {
    "add": "+",
    "sub": "-",
    "mul": "*",
    "div": "/",
    "mod": "%",
    "and": "&",
    "or": "|",
    "xor": "^",
    "shl": "<<",
    "shr": ">>",
}


def _reg(name):
    return name.replace("%", "_t_").replace("@", "")


def _operand(op):
    if is_const(op):
        return repr(op)
    return _reg(op)


def _expr(stmt):
    op = stmt.op
    a = [_operand(x) for x in stmt.args]
    if op in _ARITH:
        return "%s %s %s" % (a[0], _ARITH[op], a[1])
    if op in _CMP:
        return "%s %s %s" % (a[0], _CMP[op], a[1])
    if op == "mov":
        return a[0]
    if op == "neg":
        return "-%s" % a[0]
    if op == "not":
        return "!%s" % a[0]
    if op == "min":
        return "MIN(%s, %s)" % (a[0], a[1])
    if op == "max":
        return "MAX(%s, %s)" % (a[0], a[1])
    if op == "select":
        return "%s ? %s : %s" % (a[0], a[1], a[2])
    if op == "pack2":
        return "PACK2(%s, %s)" % (a[0], a[1])
    if op == "fst":
        return "FST(%s)" % a[0]
    if op == "snd":
        return "SND(%s)" % a[0]
    return "%s(%s)" % (op, ", ".join(a))


def _emit_body(body, lines, indent):
    pad = "  " * indent
    for stmt in body:
        k = stmt.kind
        if k == "assign":
            lines.append("%s%s = %s;" % (pad, _reg(stmt.dst), _expr(stmt)))
        elif k == "load":
            lines.append("%s%s = %s[%s];" % (pad, _reg(stmt.dst), _reg(stmt.array), _operand(stmt.index)))
        elif k == "store":
            lines.append("%s%s[%s] = %s;" % (pad, _reg(stmt.array), _operand(stmt.index), _operand(stmt.value)))
        elif k == "prefetch":
            lines.append("%sprefetch(&%s[%s]);" % (pad, _reg(stmt.array), _operand(stmt.index)))
        elif k == "enq":
            lines.append("%senq(q%d, %s);" % (pad, stmt.queue, _operand(stmt.value)))
        elif k == "enq_ctrl":
            lines.append("%senq_ctrl(q%d, %s);" % (pad, stmt.queue, stmt.ctrl.name))
        elif k == "enq_dist":
            lines.append(
                "%senq(replica[%s].q%d, %s);" % (pad, _operand(stmt.replica), stmt.queue, _operand(stmt.value))
            )
        elif k == "enq_ctrl_dist":
            lines.append("%sfor_each_replica(r) enq_ctrl(r.q%d, %s);" % (pad, stmt.queue, stmt.ctrl.name))
        elif k == "deq":
            lines.append("%s%s = deq(q%d);" % (pad, _reg(stmt.dst), stmt.queue))
        elif k == "peek":
            lines.append("%s%s = peek(q%d);" % (pad, _reg(stmt.dst), stmt.queue))
        elif k == "is_control":
            lines.append("%s%s = is_control(%s);" % (pad, _reg(stmt.dst), _operand(stmt.src)))
        elif k == "for":
            lines.append(
                "%sfor (int %s = %s; %s < %s; %s += %s) {"
                % (pad, _reg(stmt.var), _operand(stmt.lo), _reg(stmt.var), _operand(stmt.hi), _reg(stmt.var), _operand(stmt.step))
            )
            _emit_body(stmt.body, lines, indent + 1)
            lines.append("%s}" % pad)
        elif k == "loop":
            lines.append("%swhile (true) {" % pad)
            _emit_body(stmt.body, lines, indent + 1)
            lines.append("%s}" % pad)
        elif k == "if":
            lines.append("%sif (%s) {" % (pad, _operand(stmt.cond)))
            _emit_body(stmt.then_body, lines, indent + 1)
            if stmt.else_body:
                lines.append("%s} else {" % pad)
                _emit_body(stmt.else_body, lines, indent + 1)
            lines.append("%s}" % pad)
        elif k == "break":
            lines.append("%sbreak;" % pad if stmt.levels == 1 else "%sbreak %d;" % (pad, stmt.levels))
        elif k == "continue":
            lines.append("%scontinue;" % pad)
        elif k == "barrier":
            lines.append("%sbarrier(/* %s */);" % (pad, stmt.tag))
        elif k == "read_shared":
            lines.append("%s%s = shared_%s;" % (pad, _reg(stmt.dst), stmt.var.replace("%", "")))
        elif k == "write_shared":
            lines.append("%sshared_%s = %s;" % (pad, stmt.var.replace("%", ""), _operand(stmt.value)))
        elif k == "call":
            call = "%s(%s)" % (stmt.func, ", ".join(_operand(a) for a in stmt.args))
            if stmt.dst is None:
                lines.append("%s%s;" % (pad, call))
            else:
                lines.append("%s%s = %s;" % (pad, _reg(stmt.dst), call))
        elif k == "atomic_rmw":
            text = "atomic_%s(&%s[%s], %s)" % (stmt.op, _reg(stmt.array), _operand(stmt.index), _operand(stmt.value))
            if stmt.dst is None:
                lines.append("%s%s;" % (pad, text))
            else:
                lines.append("%s%s = %s;" % (pad, _reg(stmt.dst), text))
        elif k == "comment":
            lines.append("%s/* %s */" % (pad, stmt.text))
        else:
            lines.append("%s/* <%s> */" % (pad, k))


def emit_stage(stage, pipeline):
    """Pseudo-C for one stage thread."""
    lines = ["void stage%d_%s(void) {" % (stage.index, stage.name)]
    for qid, handler in sorted(stage.handlers.items()):
        lines.append("  setup_control_value_handler(q%d, &&handler_q%d);" % (qid, qid))
    _emit_body(stage.body, lines, 1)
    for qid, handler in sorted(stage.handlers.items()):
        lines.append("handler_q%d:  /* fired when deq(q%d) would return a control value */" % (qid, qid))
        _emit_body(handler, lines, 1)
    lines.append("}")
    return "\n".join(lines)


def emit_pipeline(pipeline):
    """Pseudo-C for a whole pipeline, including RA configuration."""
    lines = ["/* pipeline %s: %d stages, %d RAs, %d queues */" % (
        pipeline.name, len(pipeline.stages), len(pipeline.ras), len(pipeline.queues))]
    lines.append("void configure(void) {")
    for ra in pipeline.ras:
        lines.append(
            "  setup_reference_accelerator(q%d /* -> q%d */, %s, %s);"
            % (ra.in_queue, ra.out_queue, ra.mode.upper(), _reg(ra.array))
        )
    lines.append("}")
    for stage in pipeline.stages:
        lines.append("")
        lines.append(emit_stage(stage, pipeline))
    return "\n".join(lines)
