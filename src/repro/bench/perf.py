"""Simulator perf-regression harness (``repro bench perf``).

Times the *simulator itself* — not the simulated programs — by running the
shipped kernels (the five paper kernels plus the GARDENIA suite) under the
selected execution engines (``--engine``): the
reference interpreter (the bit-exactness oracle and speedup denominator),
the closure-compiled fast path (:mod:`repro.pipette.fastpath`), and the
batch-advance whole-stage compiler (:mod:`repro.pipette.batchpath`). Each
run produces a versioned perf record (per-engine wall times, simulated
cycles per second, per-phase breakdown) and the set rolls up to one
aggregate speedup per engine, ``sum(reference walls) / sum(engine walls)``.

Records are compared against a committed baseline (``BENCH_pipette.json``
at the repo root):

* **cycles must match the baseline exactly** — a mismatch means the
  simulator's behaviour changed (or went nondeterministic), which is an
  error, never a warning;
* **wall time is hardware-dependent**, so regressions beyond the threshold
  only warn by default (CI boxes are noisy neighbours).

Methodology notes, so the numbers mean the same thing everywhere: inputs
are built from fixed seeds; every run gets a fresh copy of the input
arrays; the GC is collected and disabled around each timed window; each
engine runs ``repeats`` times and the minimum wall time is kept (the
minimum estimates the noise-free cost; means smear scheduler jitter into
the record). Within one invocation every repeat must report identical
cycles — any spread is a determinism bug and fails the run.
"""

import gc
import json
import os
import subprocess
import time

from ..cache import cached_compile
from ..core.compiler import CompileOptions
from .harness import adapter_for

#: Schema identity stamped on every perf record / baseline file.
PERF_SCHEMA = "repro.bench/perf-record"
BASELINE_SCHEMA = "repro.bench/perf-baseline"
PERF_VERSION = 1

#: Default committed baseline, resolved against the working directory.
BASELINE_FILE = "BENCH_pipette.json"

#: History entries kept in a baseline file (oldest dropped beyond this).
HISTORY_LIMIT = 50

#: Fractional wall-time tolerance before a regression warning.
DEFAULT_THRESHOLD = 0.25

#: QUICK-scale inputs: small enough that the whole suite (both engines,
#: several repeats) stays in CI-smoke territory, large enough that each
#: kernel simulates for seconds — at tiny sizes the fixed setup cost
#: (machine build, closure compilation) dilutes the engine ratio.
QUICK_INPUTS = {
    "bfs": ("power_law", {"n": 6000, "deg": 8, "seed": 7}),
    "cc": ("power_law", {"n": 4000, "deg": 8, "seed": 7}),
    "prd": ("power_law", {"n": 2000, "deg": 4, "seed": 7}),
    "radii": ("power_law", {"n": 4000, "deg": 8, "seed": 7}),
    "spmm": ("random_matrix", {"n": 128, "nnz_per_row": 6, "seed": 7}),
    # GARDENIA suite.  tc/bc make_env canonicalizes (symmetrizes) the
    # graph internally; sssp takes deterministic integer weights.
    "sssp": ("power_law_weighted", {"n": 2500, "deg": 6, "seed": 7, "wseed": 1}),
    "pr": ("power_law", {"n": 1000, "deg": 6, "seed": 7}),
    "tc": ("power_law", {"n": 1200, "deg": 5, "seed": 7}),
    "bc": ("power_law", {"n": 2000, "deg": 6, "seed": 7}),
    "spmv": ("random_matrix", {"n": 4000, "nnz_per_row": 8, "seed": 7}),
}

#: FULL-scale inputs for local, patient measurement runs.
FULL_INPUTS = {
    "bfs": ("power_law", {"n": 20000, "deg": 8, "seed": 7}),
    "cc": ("power_law", {"n": 12000, "deg": 8, "seed": 7}),
    "prd": ("power_law", {"n": 6000, "deg": 4, "seed": 7}),
    "radii": ("power_law", {"n": 12000, "deg": 8, "seed": 7}),
    "spmm": ("random_matrix", {"n": 256, "nnz_per_row": 6, "seed": 7}),
    "sssp": ("power_law_weighted", {"n": 8000, "deg": 6, "seed": 7, "wseed": 1}),
    "pr": ("power_law", {"n": 5000, "deg": 6, "seed": 7}),
    "tc": ("power_law", {"n": 4000, "deg": 5, "seed": 7}),
    "bc": ("power_law", {"n": 6000, "deg": 6, "seed": 7}),
    "spmv": ("random_matrix", {"n": 8000, "nnz_per_row": 8, "seed": 7}),
}

SCALES = {"quick": QUICK_INPUTS, "full": FULL_INPUTS}


class PerfError(Exception):
    """A conformance/determinism failure while measuring (never a slowdown)."""


def build_input(spec):
    """Materialize one ``(kind, params)`` input spec deterministically."""
    kind, params = spec
    if kind == "power_law":
        from ..workloads import graphs

        return graphs.power_law(params["n"], params["deg"], seed=params["seed"])
    if kind == "power_law_weighted":
        from ..workloads import graphs

        return graphs.with_weights(
            graphs.power_law(params["n"], params["deg"], seed=params["seed"]),
            seed=params["wseed"],
        )
    if kind == "random_matrix":
        from ..workloads import matrices

        return matrices.random_matrix(
            params["n"], params["nnz_per_row"], seed=params["seed"]
        )
    raise PerfError("unknown input kind %r" % (kind,))


def input_label(spec):
    kind, params = spec
    inner = ",".join("%s=%s" % (k, params[k]) for k in sorted(params))
    return "%s(%s)" % (kind, inner)


def normalize_engines(spec=None):
    """Canonicalize an engine selection into an ordered tuple.

    Accepts ``None`` (the legacy pair: reference + fastpath), the string
    ``"all"``, a single engine name, or an iterable of names. The
    reference interpreter is always included — it is the bit-exactness
    oracle and the denominator of every speedup — and the result follows
    the canonical :data:`~repro.pipette.fastpath.ENGINES` order.
    """
    from ..pipette.fastpath import ENGINES

    if spec is None:
        names = ["reference", "fastpath"]
    elif isinstance(spec, str):
        names = list(ENGINES) if spec == "all" else [spec]
    else:
        names = list(spec)
    for name in names:
        if name not in ENGINES:
            raise PerfError(
                "unknown engine %r (choose from %s or 'all')"
                % (name, ", ".join(ENGINES))
            )
    ordered = [e for e in ENGINES if e in names or e == "reference"]
    return tuple(ordered)


def _timed_run(pipeline, arrays, scalars, engine):
    """One timed simulation: fresh input copy, GC quiesced, wall + result."""
    from ..runtime.executor import run_pipeline

    fresh = {name: list(values) for name, values in arrays.items()}
    gc.collect()
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        start = time.perf_counter()
        result = run_pipeline(pipeline, fresh, dict(scalars), engine=engine)
        wall = time.perf_counter() - start
    finally:
        if was_enabled:
            gc.enable()
    return result, wall


def primary_engine(engines):
    """The engine a record's legacy ``fast_wall_s``/``speedup`` refer to:
    the last non-reference engine in canonical order (batch when measured,
    else fastpath), or the reference itself in a reference-only run."""
    return engines[-1]


def measure_bench(bench, scale="quick", repeats=2, engines=None):
    """Measure one kernel under ``engines``; returns a perf record dict.

    Every engine's :meth:`~repro.pipette.stats.SimStats.summary` must match
    the reference interpreter bit-for-bit and every repeat of one engine
    must report identical cycles; either failure raises :class:`PerfError`.

    The record carries a per-engine ``engines`` map (wall, speedup vs
    reference, Mcycles/s) plus the legacy flat keys ``slow_wall_s`` /
    ``fast_wall_s`` / ``speedup``, which refer to the reference and the
    *primary* engine (see :func:`primary_engine`) so old baselines and
    report tooling keep working.
    """
    engines = normalize_engines(engines)
    spec = SCALES[scale][bench]
    phase_start = time.perf_counter()
    data = build_input(spec)
    input_s = time.perf_counter() - phase_start

    adapter = adapter_for(bench)
    arrays, scalars = adapter.env(data)
    phase_start = time.perf_counter()
    pipeline = cached_compile(adapter.function(), CompileOptions())
    compile_s = time.perf_counter() - phase_start

    walls = {name: [] for name in engines}
    results = {name: None for name in engines}
    for _ in range(max(1, repeats)):
        # Alternate engines within each repeat so slow drift (thermal,
        # neighbours) hits every side of the ratios evenly.
        for name in engines:
            result, wall = _timed_run(pipeline, arrays, scalars, name)
            walls[name].append(wall)
            previous = results[name]
            if previous is not None and previous.cycles != result.cycles:
                raise PerfError(
                    "%s: %s engine is nondeterministic (cycles %r then %r)"
                    % (bench, name, previous.cycles, result.cycles)
                )
            results[name] = result

    oracle = results["reference"]
    for name in engines:
        result = results[name]
        if result.stats.summary() != oracle.stats.summary() or result.cycles != oracle.cycles:
            raise PerfError(
                "%s: %s engine diverged from the reference interpreter "
                "(run both under tests/pipette/test_fastpath_conformance.py "
                "to localize)" % (bench, name)
            )

    # Rounded before deriving ratios, so the record is internally
    # consistent: recomputing speedup from the stored walls reproduces the
    # stored speedup.
    cycles = oracle.cycles
    slow_wall = round(min(walls["reference"]), 4)
    per_engine = {}
    for name in engines:
        wall = round(min(walls[name]), 4)
        per_engine[name] = {
            "wall_s": wall,
            "speedup": round(slow_wall / wall, 3) if wall else 0.0,
            "sim_mcycles_per_s": round(cycles / wall / 1e6, 3) if wall else 0.0,
        }
    primary = per_engine[primary_engine(engines)]
    return {
        "schema": PERF_SCHEMA,
        "version": PERF_VERSION,
        "bench": bench,
        "scale": scale,
        "input": input_label(spec),
        "repeats": max(1, repeats),
        "cycles": cycles,
        "engines": per_engine,
        "slow_wall_s": slow_wall,
        "fast_wall_s": primary["wall_s"],
        "speedup": primary["speedup"],
        "sim_mcycles_per_s": primary["sim_mcycles_per_s"],
        "phases": {
            "input_s": round(input_s, 4),
            "compile_s": round(compile_s, 4),
            "sim_slow_s": slow_wall,
            "sim_fast_s": primary["wall_s"],
        },
    }


def record_engines(records):
    """Engine names measured in *every* record, in canonical order.

    Pre-multi-engine records (no ``engines`` map) contribute the legacy
    reference + fastpath pair, so aggregation over mixed lists stays sound.
    """
    from ..pipette.fastpath import ENGINES

    common = None
    for r in records:
        names = set(r.get("engines") or ("reference", "fastpath"))
        common = names if common is None else common & names
    return [e for e in ENGINES if e in (common or ())]


def _engine_wall(record, name):
    per = record.get("engines")
    if per is not None:
        return per[name]["wall_s"]
    return record["slow_wall_s"] if name == "reference" else record["fast_wall_s"]


def aggregate(records):
    """Roll records up to the headline ratios: total reference wall over
    each engine's total wall, plus the legacy slow/fast pair (the fast side
    is the last — most advanced — engine measured in every record)."""
    engines = record_engines(records)
    slow = sum(r["slow_wall_s"] for r in records)
    per_engine = {}
    for name in engines:
        wall = sum(_engine_wall(r, name) for r in records)
        per_engine[name] = {
            "wall_s": round(wall, 4),
            "speedup": round(slow / wall, 3) if wall else 0.0,
        }
    fast = sum(r["fast_wall_s"] for r in records)
    agg = {
        "slow_wall_s": round(slow, 4),
        "fast_wall_s": round(fast, 4),
        "speedup": round(slow / fast, 3) if fast else 0.0,
    }
    if per_engine:
        agg["engines"] = per_engine
    return agg


def run_perf(benches=None, scale="quick", repeats=2, jobs=1, engines=None):
    """Measure ``benches`` (default: all five); returns the record list.

    ``jobs > 1`` fans kernels out over the :mod:`repro.bench.parallel`
    worker pool. Cycles are unaffected (that is what the determinism tests
    pin down); wall times measured under contention are only comparable to
    other contended runs, so baselines should be recorded with ``jobs=1``.
    """
    engines = normalize_engines(engines)
    if benches is None:
        benches = sorted(SCALES[scale])
    if jobs > 1:
        from .parallel import Job, run_jobs

        job_list = [
            Job(("perf", scale, bench), measure_bench, bench, scale, repeats, engines)
            for bench in benches
        ]
        return [res.value for res in run_jobs(job_list, workers=jobs)]
    return [measure_bench(bench, scale, repeats, engines) for bench in benches]


def baseline_payload(records, scale):
    return {
        "schema": BASELINE_SCHEMA,
        "version": PERF_VERSION,
        "scale": scale,
        "records": records,
        "aggregate": aggregate(records),
    }


def _git_token(argv, cwd=None):
    """Run one git query; returns its stdout iff it looks like a clean
    single-token identity (no whitespace inside, no ``fatal:``/``error:``
    text that some git builds emit on stdout), else None."""
    try:
        out = subprocess.run(
            argv, capture_output=True, text=True, timeout=10, cwd=cwd,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if out.returncode != 0:
        return None
    text = out.stdout.strip()
    if not text or len(text) > 128 or len(text.split()) != 1:
        return None
    if text.startswith("fatal") or text.startswith("error"):
        return None
    return text


def git_describe(cwd=None):
    """The working tree's git identity, or ``"unknown"``.

    Keys history entries: two updates from the same commit replace each
    other instead of piling up. ``git describe`` fails in more environments
    than it succeeds — shallow CI clones without tags, exported tarballs,
    detached worktrees — so its output is validated as a single clean token
    and the query falls back to the bare short hash before giving up;
    history keys must never embed a multi-line git error message.
    """
    token = _git_token(
        ["git", "describe", "--always", "--dirty", "--tags"], cwd=cwd
    )
    if token is None:
        token = _git_token(["git", "rev-parse", "--short", "HEAD"], cwd=cwd)
    return token if token is not None else "unknown"


def history_entry(records, scale, git=None, engine="fastpath"):
    """One compact per-engine trajectory point for the baseline history.

    ``engine`` selects which engine's walls the entry tracks; records
    without a measurement for it (legacy records, partial runs) fall back
    to their legacy fast-side keys when ``engine`` is the primary one.
    """
    agg = aggregate(records)
    per_agg = (agg.get("engines") or {}).get(engine)
    if per_agg is not None:
        agg = {
            "slow_wall_s": agg["slow_wall_s"],
            "fast_wall_s": per_agg["wall_s"],
            "speedup": per_agg["speedup"],
        }
    else:
        agg = {k: agg[k] for k in ("slow_wall_s", "fast_wall_s", "speedup")}
    benches = {}
    for r in records:
        per = (r.get("engines") or {}).get(engine)
        if per is None:
            per = {
                "wall_s": r["fast_wall_s"],
                "speedup": r["speedup"],
                "sim_mcycles_per_s": r["sim_mcycles_per_s"],
            }
        benches[r["bench"]] = {
            "cycles": r["cycles"],
            "fast_wall_s": per["wall_s"],
            "slow_wall_s": r["slow_wall_s"],
            "speedup": per["speedup"],
            "sim_mcycles_per_s": per["sim_mcycles_per_s"],
        }
    return {
        "git": git_describe() if git is None else git,
        "engine": engine,
        "scale": scale,
        "recorded": time.strftime("%Y-%m-%d", time.gmtime()),
        "aggregate": agg,
        "benches": benches,
    }


def append_history(history, entry, limit=HISTORY_LIMIT):
    """``history`` plus ``entry``, replacing any same-key prior point.

    The key is ``(engine, git, scale)`` — re-recording from the same
    commit updates that point in place (walls drift with the machine),
    while a new commit appends a new trajectory point.
    """
    key = (entry.get("engine"), entry.get("git"), entry.get("scale"))
    kept = [
        e
        for e in history
        if (e.get("engine"), e.get("git"), e.get("scale")) != key
    ]
    kept.append(entry)
    return kept[-limit:]


def write_baseline(records, scale, path=BASELINE_FILE, git=None):
    """Write the regression baseline, growing its measurement history.

    The top-level ``records``/``aggregate`` are always the *latest*
    measurement (the regression baseline the checker reads); ``history``
    accumulates one compact entry per ``(engine, git, scale)`` so the
    report's trajectory sparklines have real data. A pre-history baseline
    file contributes its records as one synthesized point before being
    superseded.
    """
    history = []
    if os.path.exists(path):
        try:
            previous = read_baseline(path)
        except (PerfError, ValueError, OSError):
            previous = None
        if previous is not None:
            history = list(previous.get("history") or [])
            if not history and previous.get("records"):
                history = [
                    history_entry(
                        previous["records"], previous.get("scale"), git="(pre-history)"
                    )
                ]
    payload = baseline_payload(records, scale)
    git_key = git_describe() if git is None else git
    tracked = [e for e in record_engines(records) if e != "reference"] or ["fastpath"]
    for engine in tracked:
        # One trajectory point per measured engine: the baseline grows a
        # multi-engine history the report can chart side by side.
        history = append_history(
            history, history_entry(records, scale, git=git_key, engine=engine)
        )
    payload["history"] = history
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return payload


def read_baseline(path=BASELINE_FILE):
    with open(path) as handle:
        payload = json.load(handle)
    if payload.get("schema") != BASELINE_SCHEMA:
        raise PerfError("%s: not a %s file" % (path, BASELINE_SCHEMA))
    return payload


def check_against_baseline(records, baseline, threshold=DEFAULT_THRESHOLD):
    """Compare fresh records to a baseline; returns ``(errors, warnings)``.

    Errors are behaviour changes (cycle counts differ from the committed
    baseline — the simulator no longer computes the same timing, or has
    gone nondeterministic). Warnings are wall-time movements beyond
    ``threshold``, which may just be the machine.
    """
    errors, warnings = [], []
    by_bench = {r["bench"]: r for r in baseline.get("records", [])}
    for record in records:
        base = by_bench.get(record["bench"])
        if base is None:
            warnings.append("%s: no baseline record" % record["bench"])
            continue
        if base.get("scale") != record["scale"] or base.get("input") != record["input"]:
            warnings.append(
                "%s: baseline measured %s at scale %s, current is %s at %s; "
                "skipping comparison"
                % (
                    record["bench"],
                    base.get("input"),
                    base.get("scale"),
                    record["input"],
                    record["scale"],
                )
            )
            continue
        if base["cycles"] != record["cycles"]:
            errors.append(
                "%s: simulated cycles changed from baseline (%r -> %r); "
                "timing behaviour moved — if intentional, re-record with "
                "--update-baseline"
                % (record["bench"], base["cycles"], record["cycles"])
            )
        base_engines = base.get("engines") or {}
        rec_engines = record.get("engines") or {}
        overlap = [
            name
            for name in rec_engines
            if name != "reference" and name in base_engines
        ]
        if overlap:
            # Multi-engine records: compare each engine the baseline also
            # measured, by name.
            pairs = [
                (
                    "%s (%s)" % (record["bench"], name),
                    {
                        "fast_wall_s": base_engines[name]["wall_s"],
                        "speedup": base_engines[name]["speedup"],
                    },
                    {
                        "fast_wall_s": rec_engines[name]["wall_s"],
                        "speedup": rec_engines[name]["speedup"],
                    },
                )
                for name in overlap
            ]
        else:
            pairs = [(record["bench"], base, record)]
        for label, base_side, rec_side in pairs:
            limit = base_side["fast_wall_s"] * (1.0 + threshold)
            if rec_side["fast_wall_s"] > limit:
                warnings.append(
                    "%s: engine wall %.3fs exceeds baseline %.3fs by more "
                    "than %d%%"
                    % (
                        label,
                        rec_side["fast_wall_s"],
                        base_side["fast_wall_s"],
                        round(threshold * 100),
                    )
                )
            if rec_side["speedup"] < base_side["speedup"] * (1.0 - threshold):
                warnings.append(
                    "%s: speedup %.2fx fell more than %d%% below baseline %.2fx"
                    % (
                        label,
                        rec_side["speedup"],
                        round(threshold * 100),
                        base_side["speedup"],
                    )
                )
    return errors, warnings


#: Column labels for the perf table, per engine.
_TABLE_LABELS = {"reference": "ref", "fastpath": "fast", "batch": "batch"}


def render_table(records, agg):
    """Human-readable summary table (stdout payload of ``bench perf``).

    Columns adapt to the engine set: one wall column per engine plus one
    speedup-vs-reference column per non-reference engine.
    """
    engines = record_engines(records) or ["reference", "fastpath"]
    ratio_engines = [e for e in engines if e != "reference"]
    lines = []
    header = "%-7s %-6s %12s" % ("bench", "scale", "cycles")
    header += "".join(
        " %9s" % ("%s(s)" % _TABLE_LABELS.get(e, e[:5])) for e in engines
    )
    header += "".join(
        " %8s" % ("%s(x)" % _TABLE_LABELS.get(e, e[:5])) for e in ratio_engines
    )
    header += " %10s" % "Mcyc/s"
    lines.append(header)
    lines.append("-" * len(header))

    def ratio(record, name):
        per = record.get("engines")
        if per is not None:
            return per[name]["speedup"]
        return record["speedup"]

    for r in records:
        row = "%-7s %-6s %12.0f" % (r["bench"], r["scale"], r["cycles"])
        row += "".join(" %9.3f" % _engine_wall(r, e) for e in engines)
        row += "".join(" %7.2fx" % ratio(r, e) for e in ratio_engines)
        row += " %10.2f" % r["sim_mcycles_per_s"]
        lines.append(row)
    lines.append("-" * len(header))
    agg_engines = agg.get("engines") or {}
    total = "%-7s %-6s %12s" % ("total", "", "")
    for e in engines:
        per = agg_engines.get(e)
        wall = per["wall_s"] if per else (
            agg["slow_wall_s"] if e == "reference" else agg["fast_wall_s"]
        )
        total += " %9.3f" % wall
    for e in ratio_engines:
        per = agg_engines.get(e)
        total += " %7.2fx" % (per["speedup"] if per else agg["speedup"])
    lines.append(total)
    return "\n".join(lines)


def obs_records(records):
    """Perf results as :mod:`repro.obs.record` RunRecords (one per engine)."""
    from ..obs.record import run_record

    out = []
    for r in records:
        per = r.get("engines") or {
            "reference": {"wall_s": r["slow_wall_s"], "speedup": 1.0},
            "fastpath": {"wall_s": r["fast_wall_s"], "speedup": r["speedup"]},
        }
        for name in record_engines([r]) or sorted(per):
            out.append(
                run_record(
                    r["bench"],
                    "engine-%s" % name,
                    r["input"],
                    r["cycles"],
                    ok=True,
                    extra={
                        "wall_s": per[name]["wall_s"],
                        "perf_scale": r["scale"],
                        "perf_speedup": per[name]["speedup"],
                    },
                )
            )
    return out


def run_cli(args):
    """``repro bench perf`` driver; returns ``(status, records)``.

    ``args`` is any object with the perf options as attributes — the
    argparse namespace of the one-shot CLI or a
    :class:`repro.api.BenchPerfRequest` (which carries ``scale`` directly
    instead of the ``--quick``/``--full`` flag pair).
    """
    from ..obs import log

    scale = getattr(args, "scale", None)
    if scale not in SCALES:
        scale = "full" if getattr(args, "full", False) else "quick"
        if getattr(args, "quick", False):
            scale = "quick"
    benches = list(args.benches) or None
    engines = getattr(args, "engine", None) or None
    started = time.perf_counter()
    try:
        records = run_perf(
            benches=benches,
            scale=scale,
            repeats=args.repeats,
            jobs=args.jobs or 1,
            engines=engines,
        )
    except PerfError as exc:
        print("perf: ERROR: %s" % exc)
        return 1, []
    agg = aggregate(records)

    if args.json:
        print(json.dumps(baseline_payload(records, scale), indent=2, sort_keys=True))
    else:
        print(render_table(records, agg))

    if args.metrics_out:
        from ..obs.record import write_jsonl

        out = obs_records(records)
        write_jsonl(out, args.metrics_out)
        log("perf: %d RunRecords -> %s", len(out), args.metrics_out)

    status = 0
    if args.update_baseline:
        payload = write_baseline(records, scale, path=args.baseline)
        # Advisory chatter goes through the obs.log funnel (stderr,
        # silenced by --quiet/REPRO_QUIET) — the table/JSON above is the
        # stdout payload; errors below stay on stdout because they *are*
        # the result of a failed check.
        log(
            "perf: baseline updated -> %s (%d history points)",
            args.baseline,
            len(payload.get("history", [])),
        )
    elif args.check_baseline:
        if not os.path.exists(args.baseline):
            print("perf: ERROR: baseline %s not found" % args.baseline)
            return 1, records
        try:
            baseline = read_baseline(args.baseline)
        except (PerfError, ValueError) as exc:
            print("perf: ERROR: %s" % exc)
            return 1, records
        errors, warnings = check_against_baseline(
            records, baseline, threshold=args.threshold
        )
        strict = getattr(args, "strict", False)
        for line in warnings:
            # Warnings are telemetry unless --strict promotes them to the
            # failure payload.
            if strict:
                print("perf: WARNING: %s" % line)
            else:
                log("perf: WARNING: %s", line)
        for line in errors:
            print("perf: ERROR: %s" % line)
        if errors:
            status = 1
        elif strict and warnings:
            status = 1
        else:
            log(
                "perf: baseline check ok (%d records, aggregate %.2fx vs "
                "baseline %.2fx)",
                len(records), agg["speedup"], baseline["aggregate"]["speedup"],
            )
    log("perf: %.1fs total", time.perf_counter() - started)
    return status, records


def main_cli(args):
    """Status-only wrapper over :func:`run_cli` (the original entry point)."""
    status, _records = run_cli(args)
    return status
