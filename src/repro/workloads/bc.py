"""Betweenness Centrality (GARDENIA suite; Brandes, single source).

Brandes' two-phase algorithm from one root: a queue-based forward BFS
accumulates shortest-path counts (``sigma``) and records the visit order,
then a backward sweep over that order in reverse scatters dependency
values (``delta``) to predecessors and folds them into ``centrality``.
Inputs are canonicalized to undirected form (the GARDENIA convention;
the backward scatter walks the same adjacency the forward phase did,
which requires symmetry).

Path counts are integers stored in doubles (exact in FP up to 2^53), so
the forward phase is exact everywhere; the backward phase divides, so the
data-parallel variant — which pulls dependencies per-predecessor instead
of pushing in visit order — matches the oracle only to a tolerance
(``check_dp``). The serial kernel and the manual pipeline replay the same
push order and are bitwise exact.
"""

from collections import deque

from ..frontend.lowering import compile_source
from ..ir import (
    ArrayDecl,
    Ctrl,
    IRBuilder,
    PipelineProgram,
    QueueSpec,
    RA_INDIRECT,
    RA_SCAN,
    RASpec,
    StageProgram,
)
from . import graphs

#: Unvisited marker used by the data-parallel variant's atomic claims.
INF = 2**30

NAME = "bc"

SOURCE = """
#pragma phloem
void bc(const int* restrict nodes, const int* restrict edges,
        int* restrict dist, double* restrict sigma, int* restrict order,
        double* restrict delta, double* restrict centrality,
        int n, int root) {
  int head = 0;
  int tail = 1;
  while (head < tail) {
    int v = order[head];
    head = head + 1;
    int dv = dist[v];
    int edge_start = nodes[v];
    int edge_end = nodes[v + 1];
    for (int e = edge_start; e < edge_end; e++) {
      int w = edges[e];
      int dw = dist[w];
      if (dw < 0) {
        dist[w] = dv + 1;
        sigma[w] = sigma[w] + sigma[v];
        order[tail] = w;
        tail = tail + 1;
      } else if (dw == dv + 1) {
        sigma[w] = sigma[w] + sigma[v];
      }
    }
  }
  for (int t = 0; t < tail; t++) {
    int w = order[tail - 1 - t];
    int dw = dist[w];
    double coeff = (1.0 + delta[w]) / sigma[w];
    int edge_start = nodes[w];
    int edge_end = nodes[w + 1];
    for (int e = edge_start; e < edge_end; e++) {
      int v = edges[e];
      if (dist[v] == dw - 1) {
        delta[v] = delta[v] + sigma[v] * coeff;
      }
    }
    if (w != root) {
      centrality[w] = centrality[w] + delta[w];
    }
  }
}
"""

_cache = {}


def function():
    if "f" not in _cache:
        _cache["f"] = compile_source(SOURCE)
    return _cache["f"].clone()


def default_root(graph):
    """A deterministic, well-connected root: the max-degree vertex."""
    return max(range(graph.n), key=graph.degree)


def make_env(graph, root=None):
    graph = graphs.canonicalize(graph)
    n = graph.n
    if root is None:
        root = default_root(graph)
    dist = [-1] * n
    dist[root] = 0
    sigma = [0.0] * n
    sigma[root] = 1.0
    order = [0] * n
    order[0] = root
    arrays = {
        "nodes": list(graph.nodes),
        "edges": list(graph.edges),
        "dist": dist,
        "sigma": sigma,
        "order": order,
        "delta": [0.0] * n,
        "centrality": [0.0] * n,
    }
    scalars = {"n": n, "root": root}
    return arrays, scalars


def reference(graph, root=None):
    """Oracle centrality: Brandes in pure Python, same visit order."""
    graph = graphs.canonicalize(graph)
    n = graph.n
    if root is None:
        root = default_root(graph)
    nodes, edges = graph.nodes, graph.edges
    dist = [-1] * n
    dist[root] = 0
    sigma = [0.0] * n
    sigma[root] = 1.0
    order = deque([root])
    visited = [root]
    while order:
        v = order.popleft()
        dv = dist[v]
        for e in range(nodes[v], nodes[v + 1]):
            w = edges[e]
            if dist[w] < 0:
                dist[w] = dv + 1
                sigma[w] += sigma[v]
                order.append(w)
                visited.append(w)
            elif dist[w] == dv + 1:
                sigma[w] += sigma[v]
    delta = [0.0] * n
    centrality = [0.0] * n
    for w in reversed(visited):
        dw = dist[w]
        coeff = (1.0 + delta[w]) / sigma[w]
        for e in range(nodes[w], nodes[w + 1]):
            v = edges[e]
            if dist[v] == dw - 1:
                delta[v] += sigma[v] * coeff
        if w != root:
            centrality[w] += delta[w]
    return centrality


def check(arrays, graph, root=None, exact=True, tol=1e-9):
    expected = reference(graph, root)
    got = arrays["centrality"]
    if exact:
        return got == expected
    return all(abs(a - b) <= tol * max(1.0, abs(b)) for a, b in zip(got, expected))


def check_dp(arrays, graph):
    """Data-parallel validation: the pull-based backward phase
    reassociates the dependency sums."""
    return check(arrays, graph, exact=False, tol=1e-6)


# ---------------------------------------------------------------------------
# Manually pipelined variant


def manual_pipeline():
    """Forward BFS in the driver, pipelined backward sweep.

    The forward phase is inherently serial (the BFS queue *is* the data
    structure), so stage 0 runs it alone while the update stage waits at
    the phase barrier. The backward sweep — the dominant, irregular phase
    — is then decoupled: stage 0 walks ``order`` in reverse, shipping
    each vertex and its neighbor burst through the nodes->edges RA chain,
    and stage 1 owns delta/centrality and replays the serial scatter
    order exactly. After the barrier stage 0 only reads arrays it wrote
    during the forward phase, so the split is race-free.
    """
    func = function()
    Q_RA1, Q_PAIRS, Q_NGH, Q_W = 0, 1, 2, 3

    b = IRBuilder(temp_prefix="%m")
    b.mov(0, dst="head")
    b.mov(1, dst="tail")
    with b.loop():
        done = b.assign("ge", ["head", "tail"])
        with b.if_(done):
            b.break_()
        v = b.load("@order", "head")
        b.binop("add", "head", 1, dst="head")
        dv = b.load("@dist", v)
        nd = b.binop("add", dv, 1)
        es = b.load("@nodes", v)
        ee = b.load("@nodes", b.binop("add", v, 1))
        with b.for_("e", es, ee):
            w = b.load("@edges", "e")
            dw = b.load("@dist", w)
            unseen = b.binop("lt", dw, 0)
            with b.if_(unseen):
                b.store("@dist", w, nd)
                sw = b.load("@sigma", w)
                sv = b.load("@sigma", v)
                b.store("@sigma", w, b.binop("add", sw, sv))
                b.store("@order", "tail", w)
                b.binop("add", "tail", 1, dst="tail")
            same = b.binop("eq", dw, nd)
            with b.if_(same):
                sw = b.load("@sigma", w)
                sv = b.load("@sigma", v)
                b.store("@sigma", w, b.binop("add", sw, sv))
    b.write_shared("tail", "tail")
    b.barrier("fwd")
    b.barrier("fwd-sync")
    with b.for_("t", 0, "tail"):
        idx = b.binop("sub", b.binop("sub", "tail", 1), "t")
        w = b.load("@order", idx)
        b.enq(Q_W, w)
        b.enq(Q_RA1, w)
        b.enq(Q_RA1, b.binop("add", w, 1))
        b.enq_ctrl(Q_RA1, Ctrl.NEXT)
    stage0 = StageProgram(0, "forward+drive", b.finish())

    b = IRBuilder(temp_prefix="%u")
    b.barrier("fwd")
    tail = b.read_shared("tail")
    b.barrier("fwd-sync")
    with b.for_("t", 0, tail):
        w = b.deq(Q_W)
        dw = b.load("@dist", w)
        dlt = b.load("@delta", w)
        sg = b.load("@sigma", w)
        coeff = b.binop("div", b.binop("add", 1.0, dlt), sg)
        prev = b.binop("sub", dw, 1)
        with b.loop():
            v = b.deq(Q_NGH)
            at_end = b.is_control(v)
            with b.if_(at_end):
                b.break_()
            dv = b.load("@dist", v)
            pred = b.binop("eq", dv, prev)
            with b.if_(pred):
                dl = b.load("@delta", v)
                sv = b.load("@sigma", v)
                b.store("@delta", v, b.binop("add", dl, b.binop("mul", sv, coeff)))
        not_root = b.binop("ne", w, "root")
        with b.if_(not_root):
            c = b.load("@centrality", w)
            dl = b.load("@delta", w)
            b.store("@centrality", w, b.binop("add", c, dl))
    stage1 = StageProgram(1, "accumulate", b.finish())

    queues = [
        QueueSpec(Q_RA1, ("stage", 0), ("ra", 0), 24, "w/w+1"),
        QueueSpec(Q_PAIRS, ("ra", 0), ("ra", 1), 24, "edge bounds"),
        QueueSpec(Q_NGH, ("ra", 1), ("stage", 1), 24, "neighbors"),
        QueueSpec(Q_W, ("stage", 0), ("stage", 1), 24, "vertices"),
    ]
    ras = [
        RASpec(0, RA_INDIRECT, "@nodes", Q_RA1, Q_PAIRS),
        RASpec(1, RA_SCAN, "@edges", Q_PAIRS, Q_NGH),
    ]
    return PipelineProgram(
        "bc_manual",
        [stage0, stage1],
        queues,
        ras,
        func.arrays,
        func.scalar_params,
        shared_vars={"tail"},
        meta={"manual": True},
    )


# ---------------------------------------------------------------------------
# Data-parallel variant


def data_parallel(nthreads):
    """Level-synchronous forward + pull-based backward.

    Forward mirrors the data-parallel BFS (segmented fringes, atomic-min
    claims); shortest-path counts accumulate with ``atomic_add`` — exact,
    since they are integers in doubles. Backward runs level by level in
    decreasing depth; each vertex *pulls* from its successors, so its
    ``delta`` has a single writer and only the FP association differs
    from the serial push order.
    """
    func = function()
    stages = []
    for tid in range(nthreads):
        b = IRBuilder(temp_prefix="%d")
        b.mov("@fringe0", dst="cur_fringe")
        b.mov("@fringe1", dst="next_fringe")
        b.mov(0, dst="cur_dist")
        b.mov(1, dst="total")
        with b.loop():
            done = b.assign("le", ["total", 0])
            with b.if_(done):
                b.break_()
            b.mov(0, dst="my_size")
            nd = b.binop("add", "cur_dist", 1)
            my_base = b.binop("mul", tid, "cap")
            with b.for_("seg", 0, "nthreads"):
                seg_size = b.load("@sizes", "seg")
                seg_base = b.binop("mul", "seg", "cap")
                with b.for_("j", tid, seg_size, nthreads):
                    idx = b.binop("add", seg_base, "j")
                    v = b.load("cur_fringe", idx)
                    sv = b.load("@sigma", v)
                    es = b.load("@nodes", v)
                    ee = b.load("@nodes", b.binop("add", v, 1))
                    with b.for_("e", es, ee):
                        w = b.load("@edges", "e")
                        old = b.atomic_min("@dist", w, nd)
                        claimed = b.binop("gt", old, nd)
                        with b.if_(claimed):
                            slot = b.binop("add", my_base, "my_size")
                            b.store("next_fringe", slot, w)
                            b.binop("add", "my_size", 1, dst="my_size")
                        at_level = b.binop("ge", old, nd)
                        with b.if_(at_level):
                            b.atomic_add("@sigma", w, sv)
            b.barrier("dp-phase")
            b.store("@sizes_next", tid, "my_size")
            b.barrier("dp-sizes")
            b.mov(0, dst="total")
            with b.for_("s2", 0, "nthreads"):
                sz = b.load("@sizes_next", "s2")
                b.binop("add", "total", sz, dst="total")
                b.store("@sizes", "s2", sz)
            b.barrier("dp-sync")
            b.binop("add", "cur_dist", 1, dst="cur_dist")
            tmp = b.mov("cur_fringe")
            b.mov("next_fringe", dst="cur_fringe")
            b.mov(tmp, dst="next_fringe")
        # cur_dist now exceeds the deepest level; sweep levels downward.
        with b.for_("lvl", 0, "cur_dist"):
            d = b.binop("sub", b.binop("sub", "cur_dist", 1), "lvl")
            succ = b.binop("add", d, 1)
            with b.for_("v", tid, "n", nthreads):
                dv = b.load("@dist", "v")
                here = b.binop("eq", dv, d)
                with b.if_(here):
                    sv = b.load("@sigma", "v")
                    b.mov(0.0, dst="acc")
                    es = b.load("@nodes", "v")
                    ee = b.load("@nodes", b.binop("add", "v", 1))
                    with b.for_("e", es, ee):
                        w = b.load("@edges", "e")
                        dw = b.load("@dist", w)
                        is_succ = b.binop("eq", dw, succ)
                        with b.if_(is_succ):
                            dl = b.load("@delta", w)
                            sw = b.load("@sigma", w)
                            contrib = b.binop(
                                "mul", sv, b.binop("div", b.binop("add", 1.0, dl), sw)
                            )
                            b.binop("add", "acc", contrib, dst="acc")
                    b.store("@delta", "v", "acc")
            b.barrier("dp-back")
        with b.for_("v2", tid, "n", nthreads):
            dv = b.load("@dist", "v2")
            reached = b.binop("ge", dv, 0)
            not_root = b.binop("ne", "v2", "root")
            fold = b.binop("and", reached, not_root)
            with b.if_(fold):
                c = b.load("@centrality", "v2")
                dl = b.load("@delta", "v2")
                b.store("@centrality", "v2", b.binop("add", c, dl))
        stages.append(StageProgram(tid, "worker%d" % tid, b.finish()))

    arrays = dict(func.arrays)
    arrays["fringe0"] = ArrayDecl("fringe0", elem_size=4)
    arrays["fringe1"] = ArrayDecl("fringe1", elem_size=4)
    arrays["sizes"] = ArrayDecl("sizes", elem_size=4)
    arrays["sizes_next"] = ArrayDecl("sizes_next", elem_size=4)
    return PipelineProgram(
        "bc_dp%d" % nthreads,
        stages,
        [],
        [],
        arrays,
        func.scalar_params + ["nthreads", "cap"],
        meta={"data_parallel": True},
    )


def make_env_dp(graph, nthreads, root=None):
    graph = graphs.canonicalize(graph)
    n = graph.n
    if root is None:
        root = default_root(graph)
    cap = n + 1
    dist = [INF] * n
    dist[root] = 0
    sigma = [0.0] * n
    sigma[root] = 1.0
    fringe0 = [0] * (cap * nthreads)
    fringe0[0] = root
    sizes = [0] * nthreads
    sizes[0] = 1
    arrays = {
        "nodes": list(graph.nodes),
        "edges": list(graph.edges),
        "dist": dist,
        "sigma": sigma,
        "order": [0] * n,
        "delta": [0.0] * n,
        "centrality": [0.0] * n,
        "fringe0": fringe0,
        "fringe1": [0] * (cap * nthreads),
        "sizes": sizes,
        "sizes_next": [0] * nthreads,
    }
    scalars = {"n": n, "root": root, "nthreads": nthreads, "cap": cap}
    return arrays, scalars
