"""AST node definitions for the mini-C frontend.

These nodes mirror the C subset the paper's kernels use. They are produced
by :mod:`repro.frontend.parser` and consumed by
:mod:`repro.frontend.lowering`; nothing downstream of lowering sees them.
"""


class Node:
    """Base AST node; carries a source line for diagnostics."""

    __slots__ = ("line",)

    def __init__(self, line=None):
        self.line = line


# --------------------------------------------------------------------------
# Types and declarations


class CType:
    """A scalar or pointer type with qualifiers."""

    __slots__ = ("base", "is_pointer", "const", "restrict", "unsigned")

    SIZES = {"int": 4, "long": 8, "float": 4, "double": 8, "void": 0}
    FLOATS = frozenset(["float", "double"])

    def __init__(self, base, is_pointer=False, const=False, restrict=False, unsigned=False):
        self.base = base
        self.is_pointer = is_pointer
        self.const = const
        self.restrict = restrict
        self.unsigned = unsigned

    @property
    def elem_size(self):
        return self.SIZES[self.base]

    @property
    def is_float(self):
        return self.base in self.FLOATS

    def __repr__(self):
        parts = []
        if self.const:
            parts.append("const")
        if self.unsigned:
            parts.append("unsigned")
        parts.append(self.base)
        if self.is_pointer:
            parts.append("*")
        if self.restrict:
            parts.append("restrict")
        return " ".join(parts)


class Param(Node):
    __slots__ = ("type", "name")

    def __init__(self, type_, name, line=None):
        super().__init__(line)
        self.type = type_
        self.name = name


class FuncDef(Node):
    __slots__ = ("name", "ret_type", "params", "body", "pragmas")

    def __init__(self, name, ret_type, params, body, pragmas, line=None):
        super().__init__(line)
        self.name = name
        self.ret_type = ret_type
        self.params = params
        self.body = body
        self.pragmas = pragmas


# --------------------------------------------------------------------------
# Statements


class VarDecl(Node):
    __slots__ = ("type", "name", "init")

    def __init__(self, type_, name, init, line=None):
        super().__init__(line)
        self.type = type_
        self.name = name
        self.init = init


class ExprStmt(Node):
    __slots__ = ("expr",)

    def __init__(self, expr, line=None):
        super().__init__(line)
        self.expr = expr


class IfStmt(Node):
    __slots__ = ("cond", "then_body", "else_body")

    def __init__(self, cond, then_body, else_body, line=None):
        super().__init__(line)
        self.cond = cond
        self.then_body = then_body
        self.else_body = else_body


class WhileStmt(Node):
    __slots__ = ("cond", "body")

    def __init__(self, cond, body, line=None):
        super().__init__(line)
        self.cond = cond
        self.body = body


class ForStmt(Node):
    __slots__ = ("init", "cond", "post", "body")

    def __init__(self, init, cond, post, body, line=None):
        super().__init__(line)
        self.init = init
        self.cond = cond
        self.post = post
        self.body = body


class BreakStmt(Node):
    __slots__ = ()


class ContinueStmt(Node):
    __slots__ = ()


class ReturnStmt(Node):
    __slots__ = ("expr",)

    def __init__(self, expr, line=None):
        super().__init__(line)
        self.expr = expr


class PragmaStmt(Node):
    """A ``#pragma`` appearing inside a function body (e.g. ``decouple``)."""

    __slots__ = ("text",)

    def __init__(self, text, line=None):
        super().__init__(line)
        self.text = text


# --------------------------------------------------------------------------
# Expressions


class Name(Node):
    __slots__ = ("ident",)

    def __init__(self, ident, line=None):
        super().__init__(line)
        self.ident = ident


class Number(Node):
    __slots__ = ("value",)

    def __init__(self, value, line=None):
        super().__init__(line)
        self.value = value


class Unary(Node):
    __slots__ = ("op", "operand")

    def __init__(self, op, operand, line=None):
        super().__init__(line)
        self.op = op
        self.operand = operand


class Binary(Node):
    __slots__ = ("op", "lhs", "rhs")

    def __init__(self, op, lhs, rhs, line=None):
        super().__init__(line)
        self.op = op
        self.lhs = lhs
        self.rhs = rhs


class Ternary(Node):
    __slots__ = ("cond", "then_expr", "else_expr")

    def __init__(self, cond, then_expr, else_expr, line=None):
        super().__init__(line)
        self.cond = cond
        self.then_expr = then_expr
        self.else_expr = else_expr


class Assign(Node):
    """``target op= value``; ``op`` is None for plain assignment."""

    __slots__ = ("target", "op", "value")

    def __init__(self, target, op, value, line=None):
        super().__init__(line)
        self.target = target
        self.op = op
        self.value = value


class IncDec(Node):
    """``x++ / x-- / ++x / --x`` (used as statements or value expressions)."""

    __slots__ = ("target", "delta", "is_prefix")

    def __init__(self, target, delta, is_prefix, line=None):
        super().__init__(line)
        self.target = target
        self.delta = delta
        self.is_prefix = is_prefix


class Index(Node):
    __slots__ = ("base", "index")

    def __init__(self, base, index, line=None):
        super().__init__(line)
        self.base = base
        self.index = index


class CallExpr(Node):
    __slots__ = ("func", "args")

    def __init__(self, func, args, line=None):
        super().__init__(line)
        self.func = func
        self.args = args
