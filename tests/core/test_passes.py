"""The six passes on BFS: each produces the paper's structures."""

import pytest

from repro import ir
from repro.core import compile_function
from repro.core.compiler import ALL_PASSES
from repro.workloads import bfs, cc


@pytest.fixture(scope="module")
def bfs_fn():
    return bfs.function()


def _stmts(pipeline):
    return [s for stage in pipeline.stages for s in stage.all_stmts()]


class TestAddQueues:
    def test_q_only_pipeline(self, bfs_fn):
        pipe = compile_function(bfs_fn, num_stages=4, passes=())
        assert len(pipe.stages) == 4
        assert pipe.ras == []
        kinds = {s.kind for s in _stmts(pipe)}
        assert "enq" in kinds and "deq" in kinds
        assert "enq_ctrl" not in kinds  # no control values yet

    def test_stage_count_respected(self, bfs_fn):
        for n in (1, 2, 3, 4):
            pipe = compile_function(bfs_fn, num_stages=n, passes=())
            assert len(pipe.stages) == n


class TestControlValues:
    def test_cv_introduces_markers_and_while_loops(self, bfs_fn):
        pipe = compile_function(bfs_fn, num_stages=4, passes=("recompute", "cv"))
        kinds = [s.kind for s in _stmts(pipe)]
        assert "enq_ctrl" in kinds
        assert "is_control" in kinds
        assert "loop" in kinds  # bounded For became while(true)
        # Bounds queues died: fewer queues than the Q-only pipeline.
        q_only = compile_function(bfs_fn, num_stages=4, passes=())
        assert len(pipe.queues) < len(q_only.queues)


class TestInterstageDCE:
    def test_dce_hoists_markers(self, bfs_fn):
        cv = compile_function(bfs_fn, num_stages=4, passes=("recompute", "cv"))
        dce = compile_function(bfs_fn, num_stages=4, passes=("recompute", "cv", "dce"))
        # After DCE the update stage consumes one flat stream: its body has
        # no counted for-loop around the element loop.
        update = dce.stages[-1]
        fors = [s for s in ir.walk(update.body) if s.kind == "for"]
        assert not fors
        assert dce.meta.get("collapsed_queues")
        assert cv.meta.get("cv_queues")

    def test_done_markers_per_phase(self, bfs_fn):
        dce = compile_function(bfs_fn, num_stages=4, passes=("recompute", "cv", "dce"))
        dones = [
            s for s in _stmts(dce) if s.kind == "enq_ctrl" and s.ctrl.name == ir.Ctrl.DONE
        ]
        assert dones


class TestHandlers:
    def test_handlers_installed(self, bfs_fn):
        pipe = compile_function(
            bfs_fn, num_stages=4, passes=("recompute", "cv", "dce", "handlers")
        )
        handlers = [h for stage in pipe.stages for h in stage.handlers.values()]
        assert handlers
        # The explicit is_control checks are gone from the handled loops.
        for stage in pipe.stages:
            if stage.handlers:
                body_kinds = [s.kind for s in ir.walk(stage.body)]
                assert "is_control" not in body_kinds


class TestReferenceAccelerators:
    def test_bfs_gets_chained_ras(self, bfs_fn):
        pipe = compile_function(bfs_fn, num_stages=4, passes=ALL_PASSES)
        assert len(pipe.ras) == 2
        by_mode = {ra.mode: ra for ra in pipe.ras}
        assert by_mode[ir.RA_INDIRECT].array == "@nodes"
        assert by_mode[ir.RA_SCAN].array == "@edges"
        # Chained: the indirect RA's output feeds the scan RA.
        assert by_mode[ir.RA_SCAN].in_queue == by_mode[ir.RA_INDIRECT].out_queue

    def test_emptied_stage_dropped(self, bfs_fn):
        pipe = compile_function(bfs_fn, num_stages=4, passes=ALL_PASSES)
        assert len(pipe.stages) == 3  # fetch_edges became the RA chain
        names = [s.name for s in pipe.stages]
        assert names[-1] == "update"

    def test_respects_max_ras(self, bfs_fn):
        pipe = compile_function(bfs_fn, num_stages=4, passes=ALL_PASSES, max_ras=1)
        assert len(pipe.ras) <= 1


class TestPrefetchStage:
    def test_distances_only_prefetched_upstream(self, bfs_fn):
        """Fig. 4's rule: read-write data is loaded only in its home stage."""
        pipe = compile_function(bfs_fn, num_stages=4, passes=ALL_PASSES)
        update = pipe.stages[-1]
        for stage in pipe.stages:
            for s in stage.all_stmts():
                if s.kind == "load" and s.array == "@distances":
                    assert stage is update
                if s.kind == "prefetch":
                    assert s.array == "@distances"
                    assert stage is not update


class TestCCPipeline:
    def test_cc_labels_stay_home(self):
        pipe = compile_function(cc.function(), num_stages=4, passes=ALL_PASSES)
        update = pipe.stages[-1]
        for stage in pipe.stages:
            for s in stage.all_stmts():
                if s.kind in ("load", "store") and s.array == "@labels":
                    assert stage is update


def test_meta_records_provenance(bfs_fn):
    pipe = compile_function(bfs_fn, num_stages=4, passes=ALL_PASSES)
    assert pipe.meta["pass_set"] == list(ALL_PASSES)
    assert pipe.meta["requested_stages"] == 4
    assert pipe.meta["points"]


def test_unknown_pass_rejected(bfs_fn):
    from repro.errors import CompileError

    with pytest.raises(CompileError, match="unknown pass"):
        compile_function(bfs_fn, passes=("vectorize",))
