"""ASCII pipeline diagrams.

Renders a :class:`~repro.ir.PipelineProgram` as the feed-forward network
the paper draws in its figures (Fig. 1/7): stages in boxes, reference
accelerators in rounded nodes, queues as labelled arrows, in dataflow
order.
"""

from collections import deque


def _nodes_and_edges(pipeline):
    nodes = {}
    for stage in pipeline.stages:
        nodes[("stage", stage.index)] = "[%d: %s]" % (stage.index, stage.name)
    for ra in pipeline.ras:
        label = "(RA%d %s %s)" % (ra.raid, ra.mode, ra.array)
        nodes[("ra", ra.raid)] = label
    edges = []
    for q in sorted(pipeline.queues.values(), key=lambda q: q.qid):
        edges.append((q.producer, q.consumer, q.qid))
    return nodes, edges


def _topo_order(nodes, edges):
    indegree = {n: 0 for n in nodes}
    adjacency = {n: [] for n in nodes}
    for src, dst, _ in edges:
        if src in nodes and dst in nodes:
            adjacency[src].append(dst)
            indegree[dst] += 1
    queue = deque(sorted((n for n, d in indegree.items() if d == 0), key=str))
    order = []
    while queue:
        node = queue.popleft()
        order.append(node)
        for nxt in adjacency[node]:
            indegree[nxt] -= 1
            if indegree[nxt] == 0:
                queue.append(nxt)
    # Cycles (feedback queues) would leave nodes out; append them anyway.
    for node in nodes:
        if node not in order:
            order.append(node)
    return order


def ascii_diagram(pipeline):
    """One line per dataflow hop, topologically ordered."""
    nodes, edges = _nodes_and_edges(pipeline)
    order = _topo_order(nodes, edges)
    position = {n: i for i, n in enumerate(order)}

    lines = ["pipeline %s" % pipeline.name]
    chain_edges = sorted(edges, key=lambda e: (position.get(e[0], 99), e[2]))
    if not chain_edges:
        for node in order:
            lines.append("  %s" % nodes[node])
        return "\n".join(lines)
    for src, dst, qid in chain_edges:
        lines.append(
            "  %-28s --q%-2d--> %s" % (nodes.get(src, str(src)), qid, nodes.get(dst, str(dst)))
        )
    orphans = [n for n in order if all(n not in (e[0], e[1]) for e in edges)]
    for node in orphans:
        lines.append("  %s (no queues)" % nodes[node])
    return "\n".join(lines)
