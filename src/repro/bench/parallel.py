"""Parallel job fan-out for the evaluation harness.

The figures/suites workload is an embarrassingly parallel graph of
independent jobs — ``(figure)``, ``(benchmark)``, ``(benchmark, input)`` —
each a deterministic pure computation. :func:`run_jobs` fans a list of
:class:`Job` s out over a ``fork``-based ``multiprocessing`` pool and
returns results in submission order, so a parallel run is bit-identical to
the serial one.

Determinism and safety rules:

* every job gets a seed derived from its key (CRC32) and the global RNG is
  reseeded with it before the job body runs — on the serial path too, so
  both paths see identical RNG state;
* workers mark themselves via an environment flag and any nested
  :func:`run_jobs` call inside a worker degrades to the serial path (no
  daemonic-pool explosions);
* jobs are handed to workers by index through a module global captured at
  ``fork`` time, so job callables may be closures over arbitrary
  unpicklable state — only *results* must pickle;
* each worker returns its :mod:`repro.cache` hit/miss delta alongside the
  result, and the parent folds those into its own counters, so cache stats
  reflect the whole fleet.

Worker count: the ``workers`` argument, else the ``REPRO_JOBS`` environment
variable, else 1 (serial).
"""

import multiprocessing
import os
import random
import time
import zlib

from .. import cache

#: Set in pool workers; guards against nested pools.
_WORKER_FLAG = "REPRO_PARALLEL_WORKER"


class Job:
    """One schedulable unit: a key, a callable, and a deterministic seed."""

    __slots__ = ("key", "fn", "args", "kwargs", "seed")

    def __init__(self, key, fn, *args, **kwargs):
        self.key = key
        self.fn = fn
        self.args = args
        self.kwargs = kwargs
        self.seed = zlib.crc32(str(key).encode("utf-8"))

    def __repr__(self):
        return "Job(%s)" % (self.key,)


class JobResult:
    """A finished job: its key, return value, and wall-clock seconds."""

    __slots__ = ("key", "value", "wall")

    def __init__(self, key, value, wall):
        self.key = key
        self.value = value
        self.wall = wall

    def __repr__(self):
        return "JobResult(%s, %.2fs)" % (self.key, self.wall)


def resolve_jobs(explicit=None):
    """Worker count: ``explicit`` > ``REPRO_JOBS`` env > 1."""
    if explicit is not None:
        return max(1, int(explicit))
    env = os.environ.get("REPRO_JOBS")
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    return 1


def in_worker():
    """True inside a pool worker (nested fan-out must stay serial)."""
    return bool(os.environ.get(_WORKER_FLAG))


def _run_one(job):
    random.seed(job.seed)
    start = time.perf_counter()
    value = job.fn(*job.args, **job.kwargs)
    return JobResult(job.key, value, time.perf_counter() - start)


#: Job list for the active pool; workers inherit it via fork and index in.
_POOL_JOBS = None


def _pool_init():
    os.environ[_WORKER_FLAG] = "1"


def _pool_run(index):
    before = cache.stats_snapshot()
    result = _run_one(_POOL_JOBS[index])
    return result, cache.stats_delta(before)


#: Results of every top-level job since the last :func:`clear_job_log`
#: (the figures CLI prints these as its per-job wall-time summary).
_JOB_LOG = []


def job_log():
    """The accumulated :class:`JobResult` s (per-job wall-time reporting)."""
    return list(_JOB_LOG)


def clear_job_log():
    """Drop the accumulated job log (start of a CLI invocation)."""
    del _JOB_LOG[:]


def _fork_available():
    try:
        return "fork" in multiprocessing.get_all_start_methods()
    except Exception:
        return False


def run_jobs(jobs, workers=None):
    """Run ``jobs`` and return their :class:`JobResult` s in submission order.

    With ``workers`` <= 1 (or a single job, or inside a pool worker, or on
    a platform without ``fork``) the jobs run serially in-process; results
    are identical either way.
    """
    global _POOL_JOBS
    jobs = list(jobs)
    workers = resolve_jobs(workers)
    parallel = (
        workers > 1 and len(jobs) > 1 and not in_worker() and _fork_available()
    )
    if not parallel:
        results = [_run_one(job) for job in jobs]
        _JOB_LOG.extend(results)
        return results

    _POOL_JOBS = jobs
    try:
        ctx = multiprocessing.get_context("fork")
        with ctx.Pool(min(workers, len(jobs)), initializer=_pool_init) as pool:
            out = pool.map(_pool_run, range(len(jobs)))
    finally:
        _POOL_JOBS = None
    results = []
    for result, delta in out:
        cache.merge_stats(delta)
        results.append(result)
    _JOB_LOG.extend(results)
    return results
