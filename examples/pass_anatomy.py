"""Anatomy of the six passes (paper Sec. IV-B and Fig. 5/6).

Compiles BFS with progressively larger pass sets, printing what each pass
does to the pipeline's structure and what it buys in cycles — a live
rendition of the paper's Fig. 6 ablation.

Run:  python examples/pass_anatomy.py
"""

from repro.core import compile_function, pipeline_summary
from repro.core.compiler import ALL_PASSES
from repro.ir import format_stage
from repro.pipette import SCALED_1CORE
from repro.runtime import run_pipeline, run_serial
from repro.workloads import bfs
from repro.workloads.graphs import uniform_random

STEPS = [
    ("decouple + add queues (pass 1)", ()),
    ("+ recompute (pass 2)", ("recompute",)),
    ("+ control values (pass 4)", ("recompute", "cv")),
    ("+ inter-stage DCE (pass 6)", ("recompute", "cv", "dce")),
    ("+ control handlers (pass 5)", ("recompute", "cv", "dce", "handlers")),
    ("+ reference accelerators (pass 3)", ALL_PASSES),
]


def main():
    graph = uniform_random(16000, 5, seed=1)
    function = bfs.function()
    arrays, scalars = bfs.make_env(graph)
    serial = run_serial(function, arrays, scalars, config=SCALED_1CORE)
    print("serial BFS: %.0f cycles on %r\n" % (serial.cycles, graph))

    last = None
    for label, passes in STEPS:
        pipeline = compile_function(function, num_stages=4, passes=passes)
        result = run_pipeline(pipeline, arrays, scalars, config=SCALED_1CORE)
        assert bfs.check(result.arrays, graph)
        print("%-36s %-40s %5.2fx" % (label, pipeline_summary(pipeline), serial.cycles / result.cycles))
        last = pipeline

    print("\nfinal update stage (control handler attached, RA-fed stream):\n")
    print(format_stage(last.stages[-1]))


if __name__ == "__main__":
    main()
