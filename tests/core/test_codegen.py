"""Pseudo-C emission."""

from repro.core import compile_function, emit_pipeline
from repro.core.compiler import ALL_PASSES
from repro.workloads import bfs


def test_emits_all_stages_and_ras():
    pipe = compile_function(bfs.function(), num_stages=4, passes=ALL_PASSES)
    text = emit_pipeline(pipe)
    assert "setup_reference_accelerator" in text
    assert "INDIRECT" in text and "SCAN" in text
    for stage in pipe.stages:
        assert "stage%d_%s" % (stage.index, stage.name) in text


def test_handler_labels_emitted():
    pipe = compile_function(bfs.function(), num_stages=4, passes=ALL_PASSES)
    text = emit_pipeline(pipe)
    assert "setup_control_value_handler" in text
    assert "handler_q" in text


def test_table1_calls_present():
    pipe = compile_function(bfs.function(), num_stages=4, passes=ALL_PASSES)
    text = emit_pipeline(pipe)
    for call in ("enq(", "deq(", "enq_ctrl("):
        assert call in text


def test_c_like_loops():
    pipe = compile_function(bfs.function(), num_stages=4, passes=())
    text = emit_pipeline(pipe)
    assert "for (int i" in text
    assert "while (true)" in text
    assert "barrier(" in text
