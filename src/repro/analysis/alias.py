"""Aliasing rules (paper Sec. IV-A, "Memory and aliasing").

Phloem requires precise aliasing information via C's ``restrict``: every
pointer parameter and pointer local is its own alias class, and classes
never overlap. The *class* of an access is therefore simply the pointer it
goes through — ``@edges`` (a parameter) or ``cur_fringe`` (a swappable
pointer local) — which is exactly the guarantee BFS's double-buffered
fringe relies on in the paper's Fig. 2.

The safety rule the decoupler enforces: a class that is *written* anywhere
in the kernel must have all its loads and stores in a single stage; other
stages may at most prefetch it (Fig. 4's race and its resolution).
"""

from __future__ import annotations

from typing import Any

from ..ir.stmts import walk

_READ_KINDS = frozenset(["load", "prefetch"])
_WRITE_KINDS = frozenset(["store", "atomic_rmw"])


def access_class(array_operand: Any) -> Any:
    """The alias class of an array operand: the pointer it goes through."""
    return array_operand


class AliasInfo:
    """Read/write sets per alias class for one function body."""

    def __init__(self, body: Any) -> None:
        self.reads: dict[Any, list[Any]] = {}
        self.writes: dict[Any, list[Any]] = {}
        for stmt in walk(body):
            if stmt.kind in _READ_KINDS:
                self.reads.setdefault(access_class(stmt.array), []).append(stmt)
            elif stmt.kind in _WRITE_KINDS:
                self.writes.setdefault(access_class(stmt.array), []).append(stmt)

    def is_written(self, cls: Any) -> bool:
        return cls in self.writes

    def is_read(self, cls: Any) -> bool:
        return cls in self.reads

    def written_classes(self) -> set[Any]:
        return set(self.writes)

    def value_forwarding_legal(self, cls: Any) -> bool:
        """May a load of ``cls`` be performed in one stage and its *value*
        consumed in another? Only if nothing writes the class (else the
        forwarded value could be stale — the paper's Fig. 4 race)."""
        return not self.is_written(cls)
