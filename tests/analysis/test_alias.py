"""Aliasing classes and the value-forwarding rule (paper Sec. IV-A)."""

from repro import ir
from repro.analysis.alias import AliasInfo, access_class
from repro.frontend import compile_source


def test_access_class_is_the_pointer():
    # restrict semantics: every pointer is its own class, classes never
    # merge — two parameters never alias even with identical indices.
    assert access_class("@edges") == "@edges"
    assert access_class("cur_fringe") == "cur_fringe"
    assert access_class("@a") != access_class("@b")


def test_read_and_write_sets():
    body = [
        ir.Load("v", "@a", "i"),
        ir.Store("@b", "i", "v"),
        ir.Prefetch("@c", "v"),
    ]
    info = AliasInfo(body)
    assert info.is_read("@a") and info.is_read("@c")
    assert not info.is_read("@b")
    assert info.is_written("@b")
    assert info.written_classes() == {"@b"}


def test_aliased_pointer_args_stay_distinct():
    # The same index register through two different pointers lands in two
    # classes; writing one leaves the other forwardable.
    body = [
        ir.Load("x", "@a", "i"),
        ir.Load("y", "@b", "i"),
        ir.Store("@b", "i", "x"),
    ]
    info = AliasInfo(body)
    assert info.value_forwarding_legal("@a")
    assert not info.value_forwarding_legal("@b")


def test_swappable_pointer_local_is_one_class():
    # BFS's double-buffered fringe: accesses through the *local* pointer
    # register form one class regardless of which buffer it points at.
    body = [
        ir.Load("v", "cur_fringe", "i"),
        ir.Store("cur_fringe", "j", "v"),
    ]
    info = AliasInfo(body)
    assert info.is_read("cur_fringe") and info.is_written("cur_fringe")
    assert not info.value_forwarding_legal("cur_fringe")


def test_atomic_rmw_is_a_write():
    body = [ir.AtomicRMW("old", "add", "@counts", "k", 1)]
    info = AliasInfo(body)
    assert info.is_written("@counts")
    assert not info.is_read("@counts")
    assert not info.value_forwarding_legal("@counts")


def test_prefetch_is_a_read_not_a_write():
    body = [ir.Prefetch("@a", "i")]
    info = AliasInfo(body)
    assert info.is_read("@a")
    assert not info.is_written("@a")
    assert info.value_forwarding_legal("@a")


def test_nested_blocks_are_walked():
    store = ir.Store("@out", "i", "x")
    body = [
        ir.Loop([
            ir.For("i", 0, 4, 1, [ir.If("c", [store], [ir.Load("x", "@in", "i")])])
        ])
    ]
    info = AliasInfo(body)
    assert info.is_written("@out")
    assert info.is_read("@in")


def test_empty_body_forwards_everything():
    info = AliasInfo([])
    assert info.written_classes() == set()
    assert info.value_forwarding_legal("@anything")


def test_lowered_kernel_classes():
    src = """
    void k(const int* restrict a, int* restrict out, int n) {
      for (int i = 0; i < n; i++) { out[i] = a[i] + 1; }
    }
    """
    f = compile_source(src)
    info = AliasInfo(f.body)
    assert info.is_read("@a")
    assert info.is_written("@out")
    assert info.value_forwarding_legal("@a")
    assert not info.value_forwarding_legal("@out")
