"""Property tests: random mini-C expressions agree with a Python oracle.

Exercises the lexer, parser, lowering, and interpreter end to end on
generated source text — the closest thing to differential testing against
a real C compiler that an offline environment allows. The generator
produces an expression *tree* rendered twice: once as C (compiled and
simulated) and once as Python (evaluated directly).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.frontend import compile_source
from repro.ir import serial_pipeline
from repro.pipette import Machine, MachineConfig, RunSpec

_PARAMS = ["p0", "p1", "p2"]


@st.composite
def expr_trees(draw, depth=0):
    if depth >= 3 or draw(st.booleans()):
        if draw(st.booleans()):
            return ("var", draw(st.sampled_from(_PARAMS)))
        return ("const", draw(st.integers(-50, 50)))
    kind = draw(st.sampled_from(["+", "-", "*", "<", ">", "<=", ">=", "==", "!=", "?:", "neg", "!"]))
    if kind == "?:":
        return (
            "?:",
            draw(expr_trees(depth=depth + 1)),
            draw(expr_trees(depth=depth + 1)),
            draw(expr_trees(depth=depth + 1)),
        )
    if kind in ("neg", "!"):
        return (kind, draw(expr_trees(depth=depth + 1)))
    return (kind, draw(expr_trees(depth=depth + 1)), draw(expr_trees(depth=depth + 1)))


def render_c(tree):
    tag = tree[0]
    if tag == "var":
        return tree[1]
    if tag == "const":
        return "(%d)" % tree[1]
    if tag == "?:":
        return "((%s) ? (%s) : (%s))" % tuple(render_c(t) for t in tree[1:])
    if tag == "neg":
        return "(-(%s))" % render_c(tree[1])
    if tag == "!":
        return "(!(%s))" % render_c(tree[1])
    return "((%s) %s (%s))" % (render_c(tree[1]), tag, render_c(tree[2]))


def eval_tree(tree, env):
    tag = tree[0]
    if tag == "var":
        return env[tree[1]]
    if tag == "const":
        return tree[1]
    if tag == "?:":
        return eval_tree(tree[2], env) if eval_tree(tree[1], env) else eval_tree(tree[3], env)
    if tag == "neg":
        return -eval_tree(tree[1], env)
    if tag == "!":
        return 0 if eval_tree(tree[1], env) else 1
    a = eval_tree(tree[1], env)
    b = eval_tree(tree[2], env)
    if tag == "+":
        return a + b
    if tag == "-":
        return a - b
    if tag == "*":
        return a * b
    return int(
        {"<": a < b, ">": a > b, "<=": a <= b, ">=": a >= b, "==": a == b, "!=": a != b}[tag]
    )


@settings(max_examples=80, deadline=None)
@given(expr_trees(), st.integers(-100, 100), st.integers(-100, 100), st.integers(-100, 100))
def test_expression_matches_python(tree, p0, p1, p2):
    env = {"p0": p0, "p1": p1, "p2": p2}
    source = """
    void k(int* restrict out, int p0, int p1, int p2) {
      out[0] = %s;
    }
    """ % render_c(tree)
    function = compile_source(source)
    machine = Machine(MachineConfig())
    result = machine.run(RunSpec(serial_pipeline(function), {"out": [0]}, env))
    assert result.arrays()["out"][0] == eval_tree(tree, env)


@settings(max_examples=30, deadline=None)
@given(expr_trees(), st.integers(-20, 20), st.integers(-20, 20))
def test_expression_in_branch_condition(tree, p0, p1):
    """The same trees drive if-conditions (C truthiness semantics)."""
    env = {"p0": p0, "p1": p1, "p2": 7}
    source = """
    void k(int* restrict out, int p0, int p1, int p2) {
      if (%s) {
        out[0] = 1;
      } else {
        out[0] = 2;
      }
    }
    """ % render_c(tree)
    function = compile_source(source)
    machine = Machine(MachineConfig())
    result = machine.run(RunSpec(serial_pipeline(function), {"out": [0]}, env))
    expected = 1 if eval_tree(tree, env) else 2
    assert result.arrays()["out"][0] == expected
