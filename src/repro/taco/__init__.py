"""Mini-Taco: a tensor-algebra compiler emitting mini-C (paper Sec. IV-D)."""

from .expr import TensorExpr, TensorRef, Term, parse_expression
from .formats import COMPRESSED, DENSE, TensorDecl, csr, dense_matrix, dense_vector
from .kernels import (
    ALPHA,
    BETA,
    dense_input,
    mtmul_kernel,
    ref_mtmul,
    ref_residual,
    ref_sddmm,
    ref_spmv,
    residual_kernel,
    sddmm_kernel,
    spmv_kernel,
)
from .lowering import LoweredKernel, lower

__all__ = [
    "TensorExpr",
    "TensorRef",
    "Term",
    "parse_expression",
    "COMPRESSED",
    "DENSE",
    "TensorDecl",
    "csr",
    "dense_matrix",
    "dense_vector",
    "ALPHA",
    "BETA",
    "dense_input",
    "mtmul_kernel",
    "ref_mtmul",
    "ref_residual",
    "ref_sddmm",
    "ref_spmv",
    "residual_kernel",
    "sddmm_kernel",
    "spmv_kernel",
    "LoweredKernel",
    "lower",
]
