"""Execution runtimes over the Pipette substrate."""

from .executor import RunResult, run_pipeline, run_replicated, run_serial
from .inspect import describe_run, queue_report, stage_report

__all__ = [
    "RunResult",
    "run_pipeline",
    "run_replicated",
    "run_serial",
    "describe_run",
    "queue_report",
    "stage_report",
]
