"""Loop-nest indexing and phase-loop detection."""

from repro import ir
from repro.analysis.loops import LoopNestInfo, estimated_trip_weight, find_phase_loop
from repro.frontend import compile_source
from repro.workloads import bfs


def test_depths():
    inner = ir.Assign("x", "mov", [0])
    body = [ir.Loop([ir.For("i", 0, 4, 1, [inner])])]
    nests = LoopNestInfo(body)
    assert nests.depth_of(inner) == 2
    assert nests.innermost_loop(inner).kind == "for"
    assert nests.depth_of(body[0]) == 0


def test_if_does_not_add_depth():
    inner = ir.Assign("x", "mov", [0])
    body = [ir.For("i", 0, 4, 1, [ir.If("c", [inner], [])])]
    assert LoopNestInfo(body).depth_of(inner) == 1


def test_phase_loop_found_in_bfs():
    f = compile_source(bfs.SOURCE)
    loop = find_phase_loop(f.body)
    assert loop is not None and loop.kind == "loop"


def test_no_phase_loop_in_counted_kernel():
    src = """
    void k(const int* restrict a, int* restrict out, int n) {
      for (int i = 0; i < n; i++) { out[i] = a[i]; }
    }
    """
    assert find_phase_loop(compile_source(src).body) is None


def test_phase_loop_requires_nest():
    src = """
    void k(int* restrict out, int n) {
      while (n > 0) { out[n] = n; n = n - 1; }
    }
    """
    assert find_phase_loop(compile_source(src).body) is None


def test_trip_weight_grows_exponentially():
    assert estimated_trip_weight(3) == 8 * estimated_trip_weight(2)
