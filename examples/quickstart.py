"""Quickstart: automatically pipeline the paper's introductory kernel.

The paper opens (Sec. I) with this snippet:

    for (i = 0; i < N; i++)
      if (A[i] > 0)
        work(B[A[i]]);

an unpredictable branch plus an indirect load — serial poison. Phloem
decouples it into `fetch A[i] -> filter -> fetch B[A[i]] -> work()`.
This script compiles that kernel, runs both versions on the simulated
Pipette machine, and prints the pipeline the compiler produced.

Run:  python examples/quickstart.py
"""

import random

from repro import ir
from repro.core import ALL_PASSES, compile_function, emit_pipeline, pipeline_summary
from repro.frontend import compile_source
from repro.pipette import SCALED_1CORE
from repro.runtime import run_pipeline, run_serial

SOURCE = """
#pragma phloem
void kernel(const int* restrict A, const int* restrict B,
            long* restrict out, int n) {
  long acc = 0;
  for (int i = 0; i < n; i++) {
    int a = A[i];
    if (a > 0) {
      acc = acc + work(B[a]);
    }
  }
  out[0] = acc;
}
"""


def main():
    function = compile_source(SOURCE)
    function.intrinsics["work"] = ir.Intrinsic("work", lambda x: (x * x + 7) % 1000, cost=10)

    rng = random.Random(1)
    n, nb = 20_000, 400_000
    arrays = {
        "A": [rng.randint(-nb + 1, nb - 1) for _ in range(n)],
        "B": [rng.randint(0, 100) for _ in range(nb)],
        "out": [0],
    }
    scalars = {"n": n}

    print("compiling serial kernel into a 4-stage pipeline...")
    pipeline = compile_function(function, num_stages=4, passes=ALL_PASSES)
    print("  ", pipeline_summary(pipeline))
    print()
    print(emit_pipeline(pipeline))
    print()

    serial = run_serial(function, arrays, scalars, config=SCALED_1CORE)
    piped = run_pipeline(pipeline, arrays, scalars, config=SCALED_1CORE)
    assert piped.arrays["out"] == serial.arrays["out"], "pipeline changed the result!"

    print("serial:   %10.0f cycles" % serial.cycles)
    print("pipelined:%10.0f cycles" % piped.cycles)
    print("speedup:  %10.2fx" % (serial.cycles / piped.cycles))


if __name__ == "__main__":
    main()
