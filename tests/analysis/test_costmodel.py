"""Decoupling-point ranking (paper Sec. V: the BFS ordering is prescribed)."""

from repro.analysis.costmodel import rank_decouple_points
from repro.frontend import compile_source
from repro.workloads import bfs, cc


def test_bfs_ranking_matches_paper():
    """distances > edges > nodes(grouped) > fringe, exactly Sec. V's story."""
    points = rank_decouple_points(compile_source(bfs.SOURCE))
    order = [p.cls for p in points]
    assert order == ["@distances", "@edges", "@nodes", "cur_fringe"]


def test_nearby_accesses_grouped():
    points = rank_decouple_points(compile_source(bfs.SOURCE))
    nodes = next(p for p in points if p.cls == "@nodes")
    assert len(nodes.loads) == 2  # nodes[v] and nodes[v+1] ride one point


def test_value_mode_follows_aliasing():
    points = {p.cls: p for p in rank_decouple_points(compile_source(bfs.SOURCE))}
    assert points["@edges"].value_mode  # read-only: forward the value
    assert not points["@distances"].value_mode  # written: prefetch only


def test_cc_labels_prefetch_mode():
    points = {p.cls: p for p in rank_decouple_points(compile_source(cc.SOURCE))}
    assert not points["@labels"].value_mode


def test_inner_loop_outweighs_outer():
    src = """
    void k(const int* restrict a, const int* restrict b, int* restrict out, int n) {
      for (int i = 0; i < n; i++) {
        int x = a[i];
        for (int j = 0; j < n; j++) {
          out[i] = out[i] + b[j];
        }
      }
    }
    """
    points = rank_decouple_points(compile_source(src))
    assert points[0].cls == "@out" or points[0].depth == 2
    classes = [p.cls for p in points]
    assert classes.index("@b") < classes.index("@a")
