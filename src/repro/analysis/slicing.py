"""Backward slicing over a region tree (the decoupler's workhorse).

The producer stage of a decoupling must contain everything needed to compute
the split load's *address*: the transitive scalar definitions (flow-
insensitive closure, which is conservative and safe for the structured
kernels we lower), and any loads those definitions chain through.
"""

from __future__ import annotations

from typing import Any, Iterable, Optional

from .defs import DefUse


def backward_slice(
    body: Any, seed_operands: Iterable[Any], du: Optional[DefUse] = None
) -> tuple[set[int], set[str]]:
    """Statement ids in the backward slice of ``seed_operands``.

    Returns ``(stmt_ids, regs)``: the defining statements transitively
    needed, and every register the slice touches.
    """
    if du is None:
        du = DefUse(body)
    needed: set[str] = set()
    sliced: set[int] = set()
    work = [op for op in seed_operands if type(op) is str and not op.startswith("@")]
    while work:
        reg = work.pop()
        if reg in needed:
            continue
        needed.add(reg)
        for stmt in du.defining_stmts(reg):
            if id(stmt) in sliced:
                continue
            sliced.add(id(stmt))
            for use in stmt.uses():
                if use not in needed:
                    work.append(use)
            # Loads pull their array pointer; For headers pull bounds.
            if stmt.kind == "for":
                for op in (stmt.lo, stmt.hi, stmt.step):
                    if type(op) is str and not op.startswith("@") and op not in needed:
                        work.append(op)
    return sliced, needed
