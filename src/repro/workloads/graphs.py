"""Graph substrate: CSR graphs and synthetic generators.

The paper's inputs (Table IV) are real road networks, internet topologies,
collaboration and simulation graphs. Those files are unavailable offline,
so each generator below reproduces the *statistics that drive performance
behaviour* — degree distribution, diameter class, and scale — for its
domain:

* ``road_network`` — near-planar grid with diagonals removed; low uniform
  degree (~2.5-3), huge diameter. Stands in for USA-road-d.* inputs.
* ``power_law`` — preferential-attachment; heavy-tailed degrees, tiny
  diameter. Stands in for as-Skitter / internet / coAuthors inputs.
* ``mesh3d`` — 3-D lattice; uniform degree ~6, large diameter. Stands in
  for hugetrace/Freescale simulation graphs.
* ``uniform_random`` — Erdős–Rényi-ish fixed out-degree, used for
  miscellaneous tests.

The GARDENIA-style suite (SSSP/PR/TC/BC/SpMV) adds two derived forms on
top of the same generators:

* :func:`with_weights` — attach deterministic integer edge weights
  (uniform or power-law distributed, matching the published benchmark
  convention of uniformly random weights on synthetic graphs);
* :func:`canonicalize` — sorted, duplicate-free, self-loop-free adjacency
  (triangle counting's merge-intersection requires it).

All generators are deterministic given a seed.
"""

import random


class CSRGraph:
    """Compressed Sparse Row graph (paper Sec. II, Fig. 1)."""

    __slots__ = ("n", "nodes", "edges")

    def __init__(self, n, nodes, edges):
        if len(nodes) != n + 1:
            raise ValueError("nodes array must have n+1 entries")
        self.n = n
        self.nodes = nodes  # offsets, len n+1
        self.edges = edges  # neighbor ids, len m

    @property
    def m(self):
        return len(self.edges)

    @property
    def avg_degree(self):
        return self.m / self.n if self.n else 0.0

    def neighbors(self, v):
        return self.edges[self.nodes[v] : self.nodes[v + 1]]

    def degree(self, v):
        return self.nodes[v + 1] - self.nodes[v]

    @classmethod
    def from_adjacency(cls, adj):
        nodes = [0]
        edges = []
        for neighbors in adj:
            edges.extend(neighbors)
            nodes.append(len(edges))
        return cls(len(adj), nodes, edges)

    def __repr__(self):
        return "CSRGraph(n=%d, m=%d, deg=%.1f)" % (self.n, self.m, self.avg_degree)


class WeightedCSRGraph(CSRGraph):
    """A CSR graph with one integer weight per directed edge."""

    __slots__ = ("weights",)

    def __init__(self, n, nodes, edges, weights):
        super().__init__(n, nodes, edges)
        if len(weights) != len(edges):
            raise ValueError("weights array must have one entry per edge")
        self.weights = weights

    def __repr__(self):
        return "WeightedCSRGraph(n=%d, m=%d, deg=%.1f)" % (
            self.n,
            self.m,
            self.avg_degree,
        )


def with_weights(graph, max_weight=64, seed=0, distribution="uniform"):
    """Attach deterministic integer edge weights to ``graph``.

    ``uniform`` draws each weight i.i.d. from [1, max_weight] (the
    convention GARDENIA/GAP use for synthetic SSSP inputs); ``powerlaw``
    skews toward small weights (many short links, few long ones), which
    stresses delta-stepping's bucket reuse. Weights depend only on
    ``(seed, graph.m, distribution)``, never on hash order.
    """
    rng = random.Random("weights-%s-%d-%d" % (distribution, graph.m, seed))
    if distribution == "uniform":
        weights = [rng.randint(1, max_weight) for _ in range(graph.m)]
    elif distribution == "powerlaw":
        weights = [
            min(max_weight, 1 + int(rng.paretovariate(1.5))) for _ in range(graph.m)
        ]
    else:
        raise ValueError("unknown weight distribution %r" % (distribution,))
    return WeightedCSRGraph(graph.n, list(graph.nodes), list(graph.edges), weights)


def canonicalize(graph):
    """Canonical undirected form: symmetric, sorted, no dups/self-loops.

    Triangle counting's merge-intersection requires ascending neighbor
    lists without repeats, and both TC and betweenness centrality are
    defined on undirected graphs (the GARDENIA convention: directed
    inputs are symmetrized first). Generators can emit duplicate edges
    and asymmetric adjacency; this fixes both. Idempotent.
    """
    sets = [set() for _ in range(graph.n)]
    for v in range(graph.n):
        for w in graph.neighbors(v):
            if w != v:
                sets[v].add(w)
                sets[w].add(v)
    return CSRGraph.from_adjacency([sorted(s) for s in sets])


def road_network(width, height, seed=0):
    """Grid-like road network: degree <= 4 with ~20%% of edges removed."""
    rng = random.Random(seed)
    n = width * height
    adj = [[] for _ in range(n)]

    def vid(x, y):
        return y * width + x

    for y in range(height):
        for x in range(width):
            v = vid(x, y)
            if x + 1 < width and rng.random() > 0.2:
                w = vid(x + 1, y)
                adj[v].append(w)
                adj[w].append(v)
            if y + 1 < height and rng.random() > 0.2:
                w = vid(x, y + 1)
                adj[v].append(w)
                adj[w].append(v)
    return CSRGraph.from_adjacency(adj)


def power_law(n, edges_per_vertex=8, seed=0):
    """Preferential-attachment graph with heavy-tailed degrees."""
    rng = random.Random(seed)
    adj = [[] for _ in range(n)]
    targets = []
    for v in range(n):
        batch = min(edges_per_vertex, max(1, v))
        chosen = set()
        for _ in range(batch):
            if targets and rng.random() < 0.75:
                w = targets[rng.randrange(len(targets))]
            else:
                w = rng.randrange(max(1, v)) if v else 0
            if w != v:
                chosen.add(w)
        for w in chosen:
            adj[v].append(w)
            adj[w].append(v)
            targets.append(w)
            targets.append(v)
    return CSRGraph.from_adjacency(adj)


def mesh3d(side, seed=0):
    """3-D lattice: uniform degree ~6, large diameter."""
    n = side**3
    adj = [[] for _ in range(n)]

    def vid(x, y, z):
        return (z * side + y) * side + x

    for z in range(side):
        for y in range(side):
            for x in range(side):
                v = vid(x, y, z)
                if x + 1 < side:
                    w = vid(x + 1, y, z)
                    adj[v].append(w)
                    adj[w].append(v)
                if y + 1 < side:
                    w = vid(x, y + 1, z)
                    adj[v].append(w)
                    adj[w].append(v)
                if z + 1 < side:
                    w = vid(x, y, z + 1)
                    adj[v].append(w)
                    adj[w].append(v)
    return CSRGraph.from_adjacency(adj)


def uniform_random(n, degree=6, seed=0):
    """Fixed out-degree random graph."""
    rng = random.Random(seed)
    adj = [[rng.randrange(n) for _ in range(degree)] for _ in range(n)]
    return CSRGraph.from_adjacency(adj)
