"""Live daemon telemetry: per-verb counters and latency distributions.

The daemon's original ``stats`` reply was a handful of aggregate counters —
enough to see *that* traffic happened, not *what it cost*. This module is
the disaggregated view: per-verb request/outcome counters, request latency
histograms, in-flight and rejection gauges, and cache-effectiveness
aggregates, all recorded in the daemon's request path and exported three
ways that must agree:

* the extended ``stats`` control reply (``"telemetry"`` key) and the
  dedicated ``telemetry`` control action, as a plain-data snapshot
  (schema :data:`TELEMETRY_SCHEMA`, version :data:`TELEMETRY_VERSION`,
  same compatibility policy as every other wire object: additions never
  bump the version, consumers ignore unknown keys);
* Prometheus-style text exposition (:func:`render_prometheus`), so a
  stock scraper can watch a daemon with zero glue code — and
  :func:`parse_prometheus` reads that text back, which pins the format in
  tests;
* the experiment report (:mod:`repro.obs.report`), which renders a saved
  snapshot next to offline RunRecords so a served session and a one-shot
  experiment read identically.

Histogram buckets are **fixed log-scale boundaries** (1–2–5 per decade,
:data:`LATENCY_BUCKETS_S`) rather than anything adaptive: two daemons —
or one daemon before and after a restart — always bucket the same
latency the same way, so snapshots diff cleanly and dashboards never
re-bin. The clock is injectable so tests drive time by hand.
"""

import time

#: Schema identity stamped on every telemetry snapshot.
TELEMETRY_SCHEMA = "repro.service/telemetry"
TELEMETRY_VERSION = 1

#: Histogram bucket upper bounds in seconds: a 1-2-5 log scale from 1 ms
#: to 60 s. Values above the last bound land in the +Inf bucket. Fixed
#: forever (determinism contract) — widening means adding bounds, which
#: never bumps the version because consumers key buckets by bound.
LATENCY_BUCKETS_S = (
    0.001, 0.002, 0.005,
    0.01, 0.02, 0.05,
    0.1, 0.2, 0.5,
    1.0, 2.0, 5.0,
    10.0, 30.0, 60.0,
)

#: Request outcomes a verb's counter row distinguishes.
OUTCOMES = ("completed", "failed", "rejected")


class LatencyHistogram:
    """Counts of observations against :data:`LATENCY_BUCKETS_S`.

    Cumulative on export (Prometheus ``le`` semantics), plain per-bucket
    counts internally. ``sum`` and ``count`` ride along so mean latency
    and rates need no raw samples.
    """

    __slots__ = ("counts", "count", "total_s")

    def __init__(self):
        self.counts = [0] * (len(LATENCY_BUCKETS_S) + 1)  # +1: the +Inf bucket
        self.count = 0
        self.total_s = 0.0

    def observe(self, seconds):
        """Record one latency observation (seconds, not cycles)."""
        seconds = max(0.0, float(seconds))
        index = len(LATENCY_BUCKETS_S)
        for i, bound in enumerate(LATENCY_BUCKETS_S):
            if seconds <= bound:
                index = i
                break
        self.counts[index] += 1
        self.count += 1
        self.total_s += seconds

    def quantile(self, q):
        """Estimated ``q``-quantile (0..1) from the bucket boundaries.

        Returns the upper bound of the bucket holding the ``q``-th
        observation (the last finite bound for the +Inf bucket), or 0.0
        with no observations — a deterministic, conservative estimate.
        """
        if self.count == 0:
            return 0.0
        rank = q * self.count
        seen = 0
        for i, bucket_count in enumerate(self.counts):
            seen += bucket_count
            if seen >= rank and seen > 0:
                bounds_i = min(i, len(LATENCY_BUCKETS_S) - 1)
                return LATENCY_BUCKETS_S[bounds_i]
        return LATENCY_BUCKETS_S[-1]

    def snapshot(self):
        """Plain data: cumulative ``le`` buckets plus count/sum/quantiles."""
        cumulative = []
        running = 0
        for bound, bucket_count in zip(LATENCY_BUCKETS_S, self.counts):
            running += bucket_count
            cumulative.append({"le": bound, "count": running})
        cumulative.append({"le": "+Inf", "count": self.count})
        return {
            "buckets": cumulative,
            "count": self.count,
            "sum_s": round(self.total_s, 6),
            "p50_s": self.quantile(0.50),
            "p90_s": self.quantile(0.90),
            "p99_s": self.quantile(0.99),
        }


class _VerbStats:
    """One verb's counters and latency histogram."""

    __slots__ = ("requests", "outcomes", "latency")

    def __init__(self):
        self.requests = 0
        self.outcomes = {outcome: 0 for outcome in OUTCOMES}
        self.latency = LatencyHistogram()


class ServiceTelemetry:
    """Everything the daemon records about its own request traffic.

    One instance per daemon; all mutation happens on the event loop
    thread, so there is no locking. Latency windows open at admission
    (:meth:`begin`) and close when the terminal response has been written
    (:meth:`finish`) — the measured interval is what the *client* waited,
    pool queueing included.
    """

    def __init__(self, clock=time.monotonic):
        self.clock = clock
        self.started = clock()
        self.verbs = {}
        self.in_flight = 0
        self.in_flight_peak = 0
        self.rejections = {}
        self.cache_totals = {}

    def _verb(self, verb):
        stats = self.verbs.get(verb)
        if stats is None:
            stats = self.verbs[verb] = _VerbStats()
        return stats

    # -- request-path hooks --------------------------------------------------

    def begin(self, verb):
        """An admitted request starts executing; returns its start stamp."""
        stats = self._verb(verb)
        stats.requests += 1
        self.in_flight += 1
        if self.in_flight > self.in_flight_peak:
            self.in_flight_peak = self.in_flight
        return self.clock()

    def finish(self, verb, started, failed=False):
        """The terminal response for an admitted request went out."""
        stats = self._verb(verb)
        stats.outcomes["failed" if failed else "completed"] += 1
        stats.latency.observe(self.clock() - started)
        self.in_flight = max(0, self.in_flight - 1)

    def rejected(self, verb, code):
        """An admission rejection (rate limit / quota), by error code."""
        stats = self._verb(verb)
        stats.requests += 1
        stats.outcomes["rejected"] += 1
        self.rejections[code] = self.rejections.get(code, 0) + 1

    def cache_delta(self, delta):
        """Fold one request's per-layer cache hit/miss delta into totals."""
        for layer, counts in (delta or {}).items():
            totals = self.cache_totals.setdefault(layer, {"hits": 0, "misses": 0})
            totals["hits"] += counts.get("hits", 0)
            totals["misses"] += counts.get("misses", 0)

    # -- export --------------------------------------------------------------

    def snapshot(self):
        """The versioned plain-data snapshot (wire/report/scrape source)."""
        verbs = {}
        for verb in sorted(self.verbs):
            stats = self.verbs[verb]
            verbs[verb] = {
                "requests": stats.requests,
                "outcomes": dict(stats.outcomes),
                "latency": stats.latency.snapshot(),
            }
        cache = {}
        for layer in sorted(self.cache_totals):
            counts = self.cache_totals[layer]
            total = counts["hits"] + counts["misses"]
            cache[layer] = {
                "hits": counts["hits"],
                "misses": counts["misses"],
                "hit_rate": round(counts["hits"] / total, 6) if total else 0.0,
            }
        return {
            "schema": TELEMETRY_SCHEMA,
            "version": TELEMETRY_VERSION,
            "uptime_s": round(self.clock() - self.started, 3),
            "in_flight": self.in_flight,
            "in_flight_peak": self.in_flight_peak,
            "rejections": dict(sorted(self.rejections.items())),
            "verbs": verbs,
            "cache": cache,
        }


# ---------------------------------------------------------------------------
# Prometheus text exposition


def _labels(pairs):
    if not pairs:
        return ""
    body = ",".join('%s="%s"' % (k, v) for k, v in pairs)
    return "{%s}" % body


def _fmt(value):
    # Integers print bare so the text is stable across snapshot round trips.
    if float(value) == int(value):
        return str(int(value))
    return repr(float(value))


def render_prometheus(snapshot, prefix="repro"):
    """The snapshot as Prometheus text exposition (version 0.0.4).

    Deterministic: verbs, layers, and label pairs are emitted sorted, so
    two renders of equal snapshots are byte-identical.
    """
    lines = []

    def metric(name, kind, help_text, samples):
        lines.append("# HELP %s_%s %s" % (prefix, name, help_text))
        lines.append("# TYPE %s_%s %s" % (prefix, name, kind))
        for suffix, pairs, value in samples:
            lines.append(
                "%s_%s%s%s %s" % (prefix, name, suffix, _labels(pairs), _fmt(value))
            )

    metric(
        "uptime_seconds", "gauge", "Seconds since the daemon started.",
        [("", (), snapshot.get("uptime_s", 0.0))],
    )
    metric(
        "in_flight_requests", "gauge", "Requests currently executing.",
        [("", (), snapshot.get("in_flight", 0))],
    )
    metric(
        "in_flight_peak_requests", "gauge", "High-water mark of concurrent requests.",
        [("", (), snapshot.get("in_flight_peak", 0))],
    )

    samples = []
    for verb in sorted(snapshot.get("verbs", {})):
        row = snapshot["verbs"][verb]
        for outcome in sorted(row.get("outcomes", {})):
            samples.append(
                ("", (("outcome", outcome), ("verb", verb)), row["outcomes"][outcome])
            )
    metric("requests_total", "counter", "Requests by verb and outcome.", samples)

    samples = []
    for code in sorted(snapshot.get("rejections", {})):
        samples.append(("", (("code", code),), snapshot["rejections"][code]))
    metric("rejected_total", "counter", "Admission rejections by error code.", samples)

    samples = []
    for verb in sorted(snapshot.get("verbs", {})):
        latency = snapshot["verbs"][verb].get("latency") or {}
        for bucket in latency.get("buckets", []):
            le = bucket["le"]
            le_text = "+Inf" if le == "+Inf" else _fmt(le)
            samples.append(
                ("_bucket", (("le", le_text), ("verb", verb)), bucket["count"])
            )
        samples.append(("_sum", (("verb", verb),), latency.get("sum_s", 0.0)))
        samples.append(("_count", (("verb", verb),), latency.get("count", 0)))
    metric(
        "request_latency_seconds", "histogram",
        "Client-observed request latency by verb.", samples,
    )

    samples = []
    for layer in sorted(snapshot.get("cache", {})):
        counts = snapshot["cache"][layer]
        samples.append(("", (("layer", layer), ("result", "hit")), counts["hits"]))
        samples.append(("", (("layer", layer), ("result", "miss")), counts["misses"]))
    metric("cache_requests_total", "counter", "Shared-cache lookups by layer.", samples)

    return "\n".join(lines) + "\n"


def parse_prometheus(text):
    """Parse text exposition back to ``{(name, labels): value}``.

    ``labels`` is the sorted tuple of ``(key, value)`` pairs. Supports the
    subset :func:`render_prometheus` emits (no escapes inside label
    values); used by tests to pin the round trip and by the report module
    to ingest a scraped daemon.
    """
    samples = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        name_part, _, value_part = line.rpartition(" ")
        if "{" in name_part:
            name, _, label_part = name_part.partition("{")
            label_body = label_part.rstrip("}")
            pairs = []
            for item in label_body.split(","):
                if not item:
                    continue
                key, _, raw = item.partition("=")
                pairs.append((key.strip(), raw.strip().strip('"')))
            labels = tuple(sorted(pairs))
        else:
            name, labels = name_part, ()
        samples[(name.strip(), labels)] = float(value_part)
    return samples
