"""Small IR rewriting utilities shared by the compiler passes."""

#: Operand fields read (not written) by each statement kind.
_USE_FIELDS = {
    "assign": ("args",),
    "load": ("array", "index"),
    "store": ("array", "index", "value"),
    "prefetch": ("array", "index"),
    "enq": ("value",),
    "enq_dist": ("value", "replica"),
    "is_control": ("src",),
    "for": ("lo", "hi", "step"),
    "if": ("cond",),
    "call": ("args",),
    "write_shared": ("value",),
    "atomic_rmw": ("array", "index", "value"),
}


def substitute_uses(body, mapping):
    """Replace register *uses* per ``mapping`` throughout ``body`` (in place).

    Definitions are left untouched, so renaming a value's consumers away
    from a multiply-defined register is safe.
    """
    for stmt in body:
        fields = _USE_FIELDS.get(stmt.kind, ())
        for field in fields:
            value = getattr(stmt, field)
            if field == "args":
                stmt.args = [mapping.get(a, a) if type(a) is str else a for a in value]
            elif type(value) is str and value in mapping:
                setattr(stmt, field, mapping[value])
        for block in stmt.blocks():
            substitute_uses(block, mapping)


def replace_stmt(container, old, new_list):
    """Replace ``old`` (by identity) with ``new_list`` inside ``container``."""
    for index, stmt in enumerate(container):
        if stmt is old:
            container[index : index + 1] = new_list
            return True
    return False


def remove_stmts(body, victim_ids):
    """Remove statements whose id() is in ``victim_ids``, recursively."""
    body[:] = [s for s in body if id(s) not in victim_ids]
    for stmt in body:
        for block in stmt.blocks():
            remove_stmts(block, victim_ids)


def find_container(body, target):
    """The statement list directly holding ``target`` (by identity), or None."""
    for stmt in body:
        if stmt is target:
            return body
    for stmt in body:
        for block in stmt.blocks():
            found = find_container(block, target)
            if found is not None:
                return found
    return None
