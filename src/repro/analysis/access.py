"""Memory-access classification (paper Sec. V, the static cost model's eyes).

Classifies each load's address pattern:

* ``sequential`` — affine in an enclosing loop's induction variable
  (streaming scans; cheap, the prefetcher covers them);
* ``indirect`` — the index depends, through scalar computation, on another
  load's result (the multi-level indirections that make applications
  irregular); carries an indirection *depth*;
* ``other`` — anything else (queue-fed indices, opaque values).

Also resolves affine index shapes ``root ± constant`` so that *nearby*
accesses (``nodes[v]``/``nodes[v+1]``) can be grouped into one decoupling
point, as the paper describes.
"""

from __future__ import annotations

from typing import Any, Optional

from ..ir.stmts import walk
from .alias import access_class
from .defs import DefUse
from .loops import LoopNestInfo

SEQUENTIAL = "sequential"
INDIRECT = "indirect"
OTHER = "other"


def affine_root(index: Any, du: DefUse, _depth: int = 0) -> tuple[Any, Any]:
    """Resolve ``index`` to ``(root_operand, constant_offset)``.

    Follows single-definition ``mov``/``add``/``sub``-by-constant chains.
    ``root_operand`` may be a register, a constant, or None when the chain
    is not affine.
    """
    if type(index) is not str:
        return index, 0
    if _depth > 32:
        return None, 0
    stmt = du.single_def(index)
    if stmt is None:
        return index, 0  # parameter or multiply-defined: itself the root
    if stmt.kind == "for":
        return index, 0
    if stmt.kind != "assign":
        return index, 0
    if stmt.op == "mov":
        root, off = affine_root(stmt.args[0], du, _depth + 1)
        return root, off
    if stmt.op in ("add", "sub"):
        a, b = stmt.args
        if type(b) is not str and stmt.op in ("add", "sub"):
            root, off = affine_root(a, du, _depth + 1)
            if root is not None:
                return root, off + (b if stmt.op == "add" else -b)
        if stmt.op == "add" and type(a) is not str:
            root, off = affine_root(b, du, _depth + 1)
            if root is not None:
                return root, off + a
    return index, 0


def _depends_on_load(reg: Any, du: DefUse, seen: Optional[set[str]] = None) -> int:
    """Does ``reg``'s value derive (through scalar ops) from a load/deq?

    Returns the number of loads on the deepest dependence path (the
    indirection depth), or 0.
    """
    if seen is None:
        seen = set()
    if type(reg) is not str or reg in seen:
        return 0
    seen.add(reg)
    best = 0
    for stmt in du.defining_stmts(reg):
        if stmt.kind == "load":
            inner = _depends_on_load(stmt.index, du, seen)
            best = max(best, 1 + inner)
        elif stmt.kind in ("deq", "peek"):
            best = max(best, 1)  # fed by another stage: data-dependent
        elif stmt.kind == "assign":
            for a in stmt.args:
                best = max(best, _depends_on_load(a, du, seen))
        elif stmt.kind == "for":
            for a in (stmt.lo, stmt.hi):
                best = max(best, _depends_on_load(a, du, seen))
    return best


class AccessInfo:
    """Classification of one load."""

    __slots__ = ("stmt", "kind", "depth", "indirection", "root", "offset", "cls")

    def __init__(
        self,
        stmt: Any,
        kind: str,
        depth: int,
        indirection: int,
        root: Any,
        offset: Any,
    ) -> None:
        self.stmt = stmt
        self.kind = kind
        self.depth = depth  # loop depth
        self.indirection = indirection  # chained-load count feeding the index
        self.root = root
        self.offset = offset
        self.cls = access_class(stmt.array)

    def __repr__(self) -> str:
        return "Access(%s[%s]: %s, loop depth %d, indirection %d)" % (
            self.stmt.array,
            self.stmt.index,
            self.kind,
            self.depth,
            self.indirection,
        )


def classify_loads(body: Any) -> list[AccessInfo]:
    """Classify every load in ``body``; returns a list of AccessInfo."""
    du = DefUse(body)
    nests = LoopNestInfo(body)
    infos = []
    for stmt in walk(body):
        if stmt.kind != "load":
            continue
        depth = nests.depth_of(stmt)
        root, offset = affine_root(stmt.index, du)
        kind = OTHER
        indirection = 0
        if type(root) is not str:
            kind = SEQUENTIAL  # constant index
        else:
            root_def = du.single_def(root)
            if root_def is not None and root_def.kind == "for":
                # Affine in an induction variable: a scan. Its *bounds* may
                # be data-dependent (edge-list scans), which raises the
                # indirection depth without changing the streaming kind.
                kind = SEQUENTIAL
                indirection = max(
                    _depends_on_load(root_def.lo, du), _depends_on_load(root_def.hi, du)
                )
            else:
                indirection = _depends_on_load(root, du)
                kind = INDIRECT if indirection > 0 else OTHER
        infos.append(AccessInfo(stmt, kind, depth, indirection, root, offset))
    return infos
