"""Failure injection: the simulator fails loudly and informatively."""

import pytest

from repro import ir
from repro.errors import DeadlockError, SimulationError
from repro.pipette import Machine, MachineConfig, RunSpec


def test_deadlock_report_names_threads_and_queues():
    b0 = ir.IRBuilder()
    b0.deq(0)
    s0 = ir.StageProgram(0, "alpha", b0.finish())
    b1 = ir.IRBuilder()
    b1.deq(1)
    s1 = ir.StageProgram(1, "beta", b1.finish())
    pipe = ir.PipelineProgram(
        "dl",
        [s0, s1],
        [
            ir.QueueSpec(0, ("stage", 1), ("stage", 0)),
            ir.QueueSpec(1, ("stage", 0), ("stage", 1)),
        ],
        [],
        {},
        [],
    )
    with pytest.raises(DeadlockError) as excinfo:
        Machine(MachineConfig()).run(RunSpec(pipe, {}, {}))
    message = str(excinfo.value)
    assert "alpha" in message and "beta" in message
    assert "deq" in message


def test_store_out_of_bounds_names_array():
    b = ir.IRBuilder()
    b.store("@buf", 99, 1)
    stage = ir.StageProgram(0, "w", b.finish())
    pipe = ir.PipelineProgram("t", [stage], [], [], {"buf": ir.ArrayDecl("buf")}, [])
    with pytest.raises(SimulationError, match="buf"):
        Machine(MachineConfig()).run(RunSpec(pipe, {"buf": [0]}, {}))


def test_pointer_misuse_reported():
    b = ir.IRBuilder()
    b.mov(5, dst="p")  # scalar, not a handle
    b.load("p", 0)
    stage = ir.StageProgram(0, "w", b.finish())
    pipe = ir.PipelineProgram("t", [stage], [], [], {}, [])
    with pytest.raises(SimulationError, match="pointer"):
        Machine(MachineConfig()).run(RunSpec(pipe, {}, {}))


def test_scan_ra_rejects_ctrl_mid_pair():
    b0 = ir.IRBuilder()
    b0.enq(0, 0)
    b0.enq_ctrl(0, "NEXT")  # arrives where 'end' belongs
    s0 = ir.StageProgram(0, "p", b0.finish())
    b1 = ir.IRBuilder()
    b1.deq(1)
    s1 = ir.StageProgram(1, "c", b1.finish())
    pipe = ir.PipelineProgram(
        "t",
        [s0, s1],
        [ir.QueueSpec(0, ("stage", 0), ("ra", 0)), ir.QueueSpec(1, ("ra", 0), ("stage", 1))],
        [ir.RASpec(0, ir.RA_SCAN, "@a", 0, 1)],
        {"a": ir.ArrayDecl("a")},
        [],
    )
    with pytest.raises(SimulationError, match="mid-pair"):
        Machine(MachineConfig()).run(RunSpec(pipe, {"a": [1, 2, 3]}, {}))


def test_dangling_break_detected():
    stage = ir.StageProgram(0, "w", [ir.Loop([ir.Break(1)]), ir.Break(1)])
    pipe = ir.PipelineProgram("t", [stage], [], [], {}, [])
    with pytest.raises(Exception):
        Machine(MachineConfig()).run(RunSpec(pipe, {}, {}))


def test_deadlock_report_includes_wait_cycle_and_static_verdict():
    # Fan-in ordering bug with a deliberately under-sized queue: the
    # producer must push 8 tokens into a capacity-2 queue before it ever
    # feeds the queue the consumer blocks on first.
    b0 = ir.IRBuilder()
    with b0.for_("i", 0, 8):
        b0.enq(0, "i")
    b0.enq(1, 1)
    s0 = ir.StageProgram(0, "produce", b0.finish())
    b1 = ir.IRBuilder()
    b1.deq(1)
    with b1.for_("j", 0, 8):
        b1.deq(0)
    s1 = ir.StageProgram(1, "consume", b1.finish())
    pipe = ir.PipelineProgram(
        "fanin",
        [s0, s1],
        [
            ir.QueueSpec(0, ("stage", 0), ("stage", 1), capacity=2),
            ir.QueueSpec(1, ("stage", 0), ("stage", 1), capacity=2),
        ],
        [],
        {},
        [],
    )
    with pytest.raises(DeadlockError) as excinfo:
        Machine(MachineConfig()).run(RunSpec(pipe, {}, {}))
    message = str(excinfo.value)
    # Dynamic trip-wire: the actual wait cycle through named tasks.
    assert "wait cycle:" in message
    assert "r0.s0.produce" in message and "r0.s1.consume" in message
    assert "-(enq q0)->" in message
    # Cross-link back to the static analyzer's verdict.
    assert "static analysis predicted this" in message
    assert "PHL203" in message


def test_deadlock_hint_without_static_finding_blames_configuration():
    # When the analyzer proves the topology sound, the deadlock report must
    # point at the runtime configuration instead of the program.
    from repro.pipette.machine import _static_deadlock_verdict

    b0 = ir.IRBuilder()
    with b0.for_("i", 0, 4):
        b0.enq(0, "i")
    s0 = ir.StageProgram(0, "p", b0.finish())
    b1 = ir.IRBuilder()
    with b1.for_("i", 0, 4):
        b1.deq(0)
    s1 = ir.StageProgram(1, "c", b1.finish())
    pipe = ir.PipelineProgram(
        "clean",
        [s0, s1],
        [ir.QueueSpec(0, ("stage", 0), ("stage", 1))],
        [],
        {},
        [],
    )
    hint = _static_deadlock_verdict([RunSpec(pipe, {}, {})])
    assert "no topology cycle or token imbalance" in hint
    assert "undersized queues" in hint
