"""Recursive-descent parser for the mini-C frontend.

Grammar (informally)::

    unit     := (pragma | funcdef)*
    funcdef  := type ident '(' params ')' block
    param    := qualifiers type '*'? qualifiers ident
    stmt     := vardecl ';' | 'if' ... | 'while' ... | 'for' ...
              | 'break' ';' | 'continue' ';' | 'return' expr? ';'
              | block | pragma | expr ';'
    expr     := assignment (with ?:, ||, &&, |, ^, &, ==/!=, relational,
                shifts, additive, multiplicative, unary, postfix)

Pragmas before a function attach to it; pragmas inside a body become
:class:`~repro.frontend.cast.PragmaStmt` statements (``#pragma decouple``).
"""

from ..errors import ParseError
from . import cast
from .lexer import tokenize

_TYPE_KEYWORDS = frozenset(["void", "int", "long", "float", "double", "unsigned"])
_QUALIFIERS = frozenset(["const", "restrict"])

_ASSIGN_OPS = {
    "=": None,
    "+=": "add",
    "-=": "sub",
    "*=": "mul",
    "/=": "div",
    "%=": "mod",
    "&=": "and",
    "|=": "or",
    "^=": "xor",
    "<<=": "shl",
    ">>=": "shr",
}

# Binary operator precedence (higher binds tighter).
_BINARY_PREC = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6,
    "!=": 6,
    "<": 7,
    "<=": 7,
    ">": 7,
    ">=": 7,
    "<<": 8,
    ">>": 8,
    "+": 9,
    "-": 9,
    "*": 10,
    "/": 10,
    "%": 10,
}


class Parser:
    def __init__(self, source):
        self.tokens = tokenize(source)
        self.pos = 0

    # -- token helpers ------------------------------------------------------

    def peek(self, offset=0):
        return self.tokens[min(self.pos + offset, len(self.tokens) - 1)]

    def advance(self):
        tok = self.tokens[self.pos]
        if tok.kind != "eof":
            self.pos += 1
        return tok

    def check(self, kind, value=None):
        tok = self.peek()
        return tok.kind == kind and (value is None or tok.value == value)

    def accept(self, kind, value=None):
        if self.check(kind, value):
            return self.advance()
        return None

    def expect(self, kind, value=None):
        tok = self.peek()
        if not self.check(kind, value):
            want = value if value is not None else kind
            raise ParseError("expected %r, found %r" % (want, tok.value), tok.line, tok.col)
        return self.advance()

    # -- top level ------------------------------------------------------------

    def parse_unit(self):
        """Parse the whole translation unit into a list of FuncDefs."""
        functions = []
        pending_pragmas = []
        while not self.check("eof"):
            if self.check("pragma"):
                pending_pragmas.append(self.advance().value)
            else:
                functions.append(self.parse_funcdef(pending_pragmas))
                pending_pragmas = []
        if pending_pragmas:
            raise ParseError("dangling #pragma with no following function")
        return functions

    def parse_funcdef(self, pragmas):
        line = self.peek().line
        ret_type = self.parse_type()
        name = self.expect("ident").value
        self.expect("punct", "(")
        params = []
        if not self.check("punct", ")"):
            while True:
                params.append(self.parse_param())
                if not self.accept("punct", ","):
                    break
        self.expect("punct", ")")
        body = self.parse_block()
        return cast.FuncDef(name, ret_type, params, body, list(pragmas), line)

    def _is_type_start(self):
        tok = self.peek()
        return tok.kind == "keyword" and (tok.value in _TYPE_KEYWORDS or tok.value in _QUALIFIERS)

    def parse_type(self):
        const = False
        restrict = False
        unsigned = False
        base = None
        while True:
            tok = self.peek()
            if tok.kind != "keyword":
                break
            if tok.value == "const":
                const = True
            elif tok.value == "restrict":
                restrict = True
            elif tok.value == "unsigned":
                unsigned = True
            elif tok.value in _TYPE_KEYWORDS:
                if base is not None:
                    break
                base = tok.value
            else:
                break
            self.advance()
        if base is None:
            if unsigned:
                base = "int"
            else:
                tok = self.peek()
                raise ParseError("expected a type, found %r" % (tok.value,), tok.line, tok.col)
        is_pointer = False
        while self.accept("punct", "*"):
            is_pointer = True
            # Qualifiers may follow the star (e.g. `int* restrict`).
            while self.peek().kind == "keyword" and self.peek().value in _QUALIFIERS:
                if self.peek().value == "const":
                    const = True
                else:
                    restrict = True
                self.advance()
        return cast.CType(base, is_pointer, const, restrict, unsigned)

    def parse_param(self):
        line = self.peek().line
        type_ = self.parse_type()
        name = self.expect("ident").value
        # Tolerate `int arr[]` as a pointer parameter.
        if self.accept("punct", "["):
            self.expect("punct", "]")
            type_.is_pointer = True
        return cast.Param(type_, name, line)

    # -- statements -----------------------------------------------------------

    def parse_block(self):
        self.expect("punct", "{")
        body = []
        while not self.check("punct", "}"):
            body.extend(self.parse_stmt())
        self.expect("punct", "}")
        return body

    def parse_stmt(self):
        """Parse one statement; returns a *list* (declarations may expand)."""
        tok = self.peek()

        if tok.kind == "pragma":
            self.advance()
            return [cast.PragmaStmt(tok.value, tok.line)]

        if self.check("punct", "{"):
            return self.parse_block()

        if self.check("punct", ";"):
            self.advance()
            return []

        if tok.kind == "keyword":
            if tok.value == "if":
                return [self.parse_if()]
            if tok.value == "while":
                return [self.parse_while()]
            if tok.value == "for":
                return [self.parse_for()]
            if tok.value == "break":
                self.advance()
                self.expect("punct", ";")
                return [cast.BreakStmt(tok.line)]
            if tok.value == "continue":
                self.advance()
                self.expect("punct", ";")
                return [cast.ContinueStmt(tok.line)]
            if tok.value == "return":
                self.advance()
                expr = None if self.check("punct", ";") else self.parse_expr()
                self.expect("punct", ";")
                return [cast.ReturnStmt(expr, tok.line)]
            if tok.value in _TYPE_KEYWORDS or tok.value in _QUALIFIERS:
                decls = self.parse_vardecls()
                self.expect("punct", ";")
                return decls

        expr = self.parse_expr()
        self.expect("punct", ";")
        return [cast.ExprStmt(expr, tok.line)]

    def parse_vardecls(self):
        line = self.peek().line
        type_ = self.parse_type()
        decls = []
        while True:
            name = self.expect("ident").value
            init = None
            if self.accept("punct", "="):
                init = self.parse_assignment()
            decls.append(cast.VarDecl(type_, name, init, line))
            if not self.accept("punct", ","):
                break
        return decls

    def parse_if(self):
        line = self.expect("keyword", "if").line
        self.expect("punct", "(")
        cond = self.parse_expr()
        self.expect("punct", ")")
        then_body = self.parse_stmt()
        else_body = []
        if self.accept("keyword", "else"):
            else_body = self.parse_stmt()
        return cast.IfStmt(cond, then_body, else_body, line)

    def parse_while(self):
        line = self.expect("keyword", "while").line
        self.expect("punct", "(")
        cond = self.parse_expr()
        self.expect("punct", ")")
        body = self.parse_stmt()
        return cast.WhileStmt(cond, body, line)

    def parse_for(self):
        line = self.expect("keyword", "for").line
        self.expect("punct", "(")
        init = []
        if not self.check("punct", ";"):
            if self._is_type_start():
                init = self.parse_vardecls()
            else:
                init = [cast.ExprStmt(self.parse_expr(), line)]
        self.expect("punct", ";")
        cond = None if self.check("punct", ";") else self.parse_expr()
        self.expect("punct", ";")
        post = None if self.check("punct", ")") else self.parse_expr()
        self.expect("punct", ")")
        body = self.parse_stmt()
        return cast.ForStmt(init, cond, post, body, line)

    # -- expressions ------------------------------------------------------------

    def parse_expr(self):
        return self.parse_assignment()

    def parse_assignment(self):
        lhs = self.parse_ternary()
        tok = self.peek()
        if tok.kind == "punct" and tok.value in _ASSIGN_OPS:
            self.advance()
            rhs = self.parse_assignment()
            if not isinstance(lhs, (cast.Name, cast.Index)):
                raise ParseError("invalid assignment target", tok.line, tok.col)
            return cast.Assign(lhs, _ASSIGN_OPS[tok.value], rhs, tok.line)
        return lhs

    def parse_ternary(self):
        cond = self.parse_binary(1)
        if self.accept("punct", "?"):
            then_expr = self.parse_assignment()
            self.expect("punct", ":")
            else_expr = self.parse_assignment()
            return cast.Ternary(cond, then_expr, else_expr)
        return cond

    def parse_binary(self, min_prec):
        lhs = self.parse_unary()
        while True:
            tok = self.peek()
            if tok.kind != "punct":
                break
            prec = _BINARY_PREC.get(tok.value)
            if prec is None or prec < min_prec:
                break
            self.advance()
            rhs = self.parse_binary(prec + 1)
            lhs = cast.Binary(tok.value, lhs, rhs, tok.line)
        return lhs

    def parse_unary(self):
        tok = self.peek()
        if tok.kind == "punct":
            if tok.value == "-":
                self.advance()
                return cast.Unary("neg", self.parse_unary(), tok.line)
            if tok.value == "!":
                self.advance()
                return cast.Unary("not", self.parse_unary(), tok.line)
            if tok.value == "~":
                self.advance()
                # ~x == -x - 1 on two's-complement ints.
                return cast.Binary("-", cast.Unary("neg", self.parse_unary(), tok.line), cast.Number(1), tok.line)
            if tok.value == "+":
                self.advance()
                return self.parse_unary()
            if tok.value in ("++", "--"):
                self.advance()
                target = self.parse_unary()
                return cast.IncDec(target, 1 if tok.value == "++" else -1, True, tok.line)
            if tok.value == "(":
                # Could be a cast like `(int)` — treat casts as no-ops.
                if self.peek(1).kind == "keyword" and self.peek(1).value in _TYPE_KEYWORDS:
                    self.advance()
                    self.parse_type()
                    self.expect("punct", ")")
                    return self.parse_unary()
        return self.parse_postfix()

    def parse_postfix(self):
        expr = self.parse_primary()
        while True:
            tok = self.peek()
            if self.check("punct", "["):
                self.advance()
                index = self.parse_expr()
                self.expect("punct", "]")
                expr = cast.Index(expr, index, tok.line)
            elif self.check("punct", "(") and isinstance(expr, cast.Name):
                self.advance()
                args = []
                if not self.check("punct", ")"):
                    while True:
                        args.append(self.parse_assignment())
                        if not self.accept("punct", ","):
                            break
                self.expect("punct", ")")
                expr = cast.CallExpr(expr.ident, args, tok.line)
            elif self.check("punct", "++") or self.check("punct", "--"):
                op = self.advance()
                expr = cast.IncDec(expr, 1 if op.value == "++" else -1, False, op.line)
            else:
                break
        return expr

    def parse_primary(self):
        tok = self.peek()
        if tok.kind == "number":
            self.advance()
            return cast.Number(tok.value, tok.line)
        if tok.kind == "ident":
            self.advance()
            return cast.Name(tok.value, tok.line)
        if tok.kind == "keyword" and tok.value in ("true", "false"):
            self.advance()
            return cast.Number(1 if tok.value == "true" else 0, tok.line)
        if self.accept("punct", "("):
            expr = self.parse_expr()
            self.expect("punct", ")")
            return expr
        raise ParseError("unexpected token %r" % (tok.value,), tok.line, tok.col)


def parse(source):
    """Parse mini-C ``source`` into a list of FuncDef ASTs."""
    return Parser(source).parse_unit()
