"""Program-phase transform (paper Sec. IV-A, "Program phases").

Kernels like BFS and PageRank-Delta wrap their work nest in a convergence
loop whose iterations cannot be overlapped across stages. Before
decoupling, this prepass makes the cross-phase scalar flow explicit:

* every scalar that is computed inside the work nest and consumed at phase
  level (e.g. BFS's ``next_size``) is routed through a *shared cell*;
* two barriers bracket the hand-off: stages synchronize, the owner's write
  becomes visible, every stage reads it, and a second barrier keeps a fast
  stage's next-phase write from racing a slow stage's read.

The transform is semantics-preserving on serial code (shared cells are just
memory and a one-participant barrier is free), and after decoupling it puts
the ``WriteShared`` in whichever stage computes the value while the reads
and phase-level recomputation replicate into every stage.
"""

from ..ir import stmts as S
from ..ir.stmts import walk
from .rewrite import substitute_uses


def _phase_level_stmts(loop_body):
    """Statements at phase level: directly in the body or under Ifs only."""
    out = []
    for stmt in loop_body:
        out.append(stmt)
        if stmt.kind == "if":
            for block in stmt.blocks():
                out.extend(_phase_level_stmts(block))
    return out


def _nest_defined_regs(loop_body):
    """Registers with a definition inside a nested loop of the phase body."""
    regs = set()
    for stmt in loop_body:
        if stmt.kind in ("for", "loop"):
            for inner in walk([stmt]):
                if inner is stmt:
                    continue
                regs.update(inner.defs())
        elif stmt.kind == "if":
            for block in stmt.blocks():
                regs |= _nest_defined_regs(block)
    return regs


def apply_phase_transform(function, phase_loop):
    """Rewrite ``phase_loop`` in place; returns the shared variable names.

    Inserts, after the last nested loop of the phase body::

        write_shared(<r>, r)   # for each nest-computed, phase-used scalar
        barrier(phase)
        r = read_shared(<r>)
        barrier(phase-sync)
    """
    body = phase_loop.body
    nest_defined = _nest_defined_regs(body)
    phase_stmts = _phase_level_stmts(body)

    used_at_phase = set()
    for stmt in phase_stmts:
        if stmt.kind in ("for", "loop"):
            continue
        used_at_phase.update(stmt.uses())
    # The loop condition check (If/Break at phase level) is included above.

    shared = sorted(nest_defined & used_at_phase)
    if not shared:
        # Still synchronize phases: stages must not overlap phase N+1 with N.
        insert_at = _position_after_last_loop(body)
        body.insert(insert_at, S.Barrier("phase"))
        return []

    insert_at = _position_after_last_loop(body)
    # Rename downstream uses to the freshly-read value so the phase-level
    # recomputation chain is *pure* (its only reaching definition is the
    # ReadShared), which is what lets every stage replicate it.
    renames = {reg: "%s__phase" % reg for reg in shared}
    substitute_uses(body[insert_at:], renames)
    inserted = []
    for reg in shared:
        inserted.append(S.WriteShared(reg, reg))
    inserted.append(S.Barrier("phase"))
    for reg in shared:
        inserted.append(S.ReadShared(renames[reg], reg))
    inserted.append(S.Barrier("phase-sync"))
    body[insert_at:insert_at] = inserted
    return shared


def _position_after_last_loop(body):
    last = 0
    for index, stmt in enumerate(body):
        if stmt.kind in ("for", "loop"):
            last = index + 1
    return last


def prepare_phases(function, profiler=None):
    """Detect and transform the phase loop; returns shared var names.

    ``profiler`` (a :class:`repro.obs.PassProfiler`) records the transform
    as a ``"phases"`` pass; the record only appears when a phase loop is
    actually found and rewritten.
    """
    from ..analysis.loops import find_phase_loop

    phase_loop = find_phase_loop(function.body)
    if phase_loop is None:
        return []
    if profiler is None:
        return apply_phase_transform(function, phase_loop)
    return profiler.measure(
        "phases", function, lambda: apply_phase_transform(function, phase_loop)
    )
