"""Documentation contract: every public item carries a doc comment."""

import importlib
import inspect

import pytest

MODULES = [
    "repro",
    "repro.ir",
    "repro.frontend",
    "repro.analysis",
    "repro.core",
    "repro.pipette",
    "repro.runtime",
    "repro.taco",
    "repro.workloads",
    "repro.bench",
]


@pytest.mark.parametrize("name", MODULES)
def test_module_docstring(name):
    module = importlib.import_module(name)
    assert module.__doc__ and module.__doc__.strip(), name


@pytest.mark.parametrize("name", MODULES)
def test_public_items_documented(name):
    module = importlib.import_module(name)
    exported = getattr(module, "__all__", [])
    undocumented = []
    for item_name in exported:
        item = getattr(module, item_name)
        if inspect.isfunction(item) or inspect.isclass(item):
            if not (item.__doc__ and item.__doc__.strip()):
                undocumented.append(item_name)
    assert not undocumented, "%s: %s" % (name, undocumented)


def test_benchmark_modules_documented():
    import pathlib

    for path in (pathlib.Path(__file__).parent.parent / "benchmarks").glob("test_*.py"):
        first = path.read_text().lstrip()
        assert first.startswith('"""'), path.name
