"""Architecturally-visible hardware queues (Pipette Sec. III).

Queues are bounded, timestamped FIFOs. An entry carries the cycle at which
it becomes visible to the consumer (enqueue cycle + queue latency); a freed
slot carries the cycle at which the producer may reuse it. This gives exact
full/empty blocking semantics in the event-driven simulation without a
global cycle loop: the i-th enqueue cannot happen before the (i-capacity)-th
entry was dequeued, and a dequeue cannot happen before its entry's enqueue
has propagated.
"""

from collections import deque


class HWQueue:
    """One hardware queue instance bound to a simulation run."""

    __slots__ = (
        "qid",
        "capacity",
        "latency",
        "entries",
        "slot_free",
        "waiting_consumers",
        "waiting_producers",
        "total_enqs",
        "total_deqs",
        "max_occupancy",
        "full_blocks",
        "empty_blocks",
        "producer_done",
        "tracer",
        "label",
    )

    def __init__(self, qid, capacity, latency, tracer=None, label=None):
        self.qid = qid
        self.capacity = capacity
        self.latency = latency
        self.entries = deque()
        self.slot_free = deque([0.0] * capacity)
        self.waiting_consumers = []
        self.waiting_producers = []
        self.total_enqs = 0
        self.total_deqs = 0
        self.max_occupancy = 0
        self.full_blocks = 0
        self.empty_blocks = 0
        self.producer_done = False
        self.tracer = tracer
        self.label = label if label is not None else "q%d" % qid
        if tracer is not None:
            tracer.register_queue(self.label)

    def try_enq(self, now, value, extra_latency=0.0):
        """Attempt an enqueue at cycle ``now``.

        Returns the enqueue completion cycle, or None if the queue is full
        (caller must block until a consumer frees a slot).
        """
        if not self.slot_free:
            self.full_blocks += 1
            return None
        freed_at = self.slot_free.popleft()
        t = freed_at if freed_at > now else now
        self.entries.append((value, t + self.latency + extra_latency))
        self.total_enqs += 1
        if len(self.entries) > self.max_occupancy:
            self.max_occupancy = len(self.entries)
        if self.tracer is not None:
            self.tracer.counter(self.label, t, len(self.entries))
        if self.waiting_consumers:
            waiters, self.waiting_consumers = self.waiting_consumers, []
            for task in waiters:
                task.wake()
        return t

    def try_deq(self, now):
        """Attempt a dequeue at cycle ``now``.

        Returns ``(value, completion_cycle)`` or None if empty.
        """
        if not self.entries:
            self.empty_blocks += 1
            return None
        value, avail = self.entries.popleft()
        t = avail if avail > now else now
        self.slot_free.append(t)
        self.total_deqs += 1
        if self.tracer is not None:
            self.tracer.counter(self.label, t, len(self.entries))
        if self.waiting_producers:
            waiters, self.waiting_producers = self.waiting_producers, []
            for task in waiters:
                task.wake()
        return value, t

    def try_peek(self, now):
        """Like :meth:`try_deq` but leaves the entry in place."""
        if not self.entries:
            return None
        value, avail = self.entries[0]
        return value, (avail if avail > now else now)

    # -- event-horizon contract (batch-advance engine / Scheduler) ---------
    #
    # The next_*_cycle methods answer "at which cycle does the next
    # interesting event on this queue happen, as seen from cycle ``now``"
    # WITHOUT mutating any state. They are the closed forms the engines'
    # inline fast paths advance the clock by (``avail if avail > now else
    # now`` is exactly ``next_deq_cycle``), and what the property suite
    # checks against N single-cycle steps.

    def next_deq_cycle(self, now):
        """Cycle at which a dequeue issued at ``now`` would complete, or
        None while the queue is empty (an enqueue, not time, unblocks it)."""
        if not self.entries:
            return None
        avail = self.entries[0][1]
        return avail if avail > now else now

    def next_enq_cycle(self, now):
        """Cycle at which an enqueue issued at ``now`` would claim its slot,
        or None while the queue is full (a dequeue must free a slot)."""
        if not self.slot_free:
            return None
        freed_at = self.slot_free[0]
        return freed_at if freed_at > now else now

    def next_event_cycle(self, now):
        """Earliest cycle >= ``now`` with a state transition available on
        either endpoint, or None if the queue is quiescent until some other
        agent acts."""
        d = self.next_deq_cycle(now)
        e = self.next_enq_cycle(now)
        if d is None:
            return e
        if e is None:
            return d
        return d if d < e else e

    @property
    def occupancy(self):
        return len(self.entries)

    def __repr__(self):
        return "HWQueue(%d, %d/%d)" % (self.qid, len(self.entries), self.capacity)
