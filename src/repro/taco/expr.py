"""Tensor-expression frontend of the mini-Taco compiler (paper Sec. IV-D).

Parses expressions in Taco's surface syntax::

    y(i) = A(i,j) * x(j)
    y(j) = alpha * At(i,j) * x(i) + beta * z(j)
    A(i,j) = B(i,j) * C(i,k) * D(k,j)
    y(i) = b(i) - A(i,j) * x(j)

into a sum-of-terms form: the right-hand side is a list of terms, each a
product of scalar symbols and tensor references, with an optional sign.
"""

import re

from ..errors import ParseError


class TensorRef:
    """One tensor access, e.g. ``A(i,j)``."""

    __slots__ = ("name", "indices")

    def __init__(self, name, indices):
        self.name = name
        self.indices = tuple(indices)

    @property
    def order(self):
        return len(self.indices)

    def __repr__(self):
        return "%s(%s)" % (self.name, ",".join(self.indices))


class Term:
    """A signed product of scalars and tensor references."""

    __slots__ = ("sign", "scalars", "refs")

    def __init__(self, sign, scalars, refs):
        self.sign = sign  # +1 or -1
        self.scalars = list(scalars)
        self.refs = list(refs)

    def __repr__(self):
        parts = self.scalars + [repr(r) for r in self.refs]
        return ("-" if self.sign < 0 else "") + " * ".join(parts)


class TensorExpr:
    """A parsed assignment ``lhs = term (+|- term)*``."""

    def __init__(self, lhs, terms):
        self.lhs = lhs
        self.terms = terms

    @property
    def index_vars(self):
        seen = []
        for ref in [self.lhs] + [r for t in self.terms for r in t.refs]:
            for idx in ref.indices:
                if idx not in seen:
                    seen.append(idx)
        return seen

    @property
    def contraction_vars(self):
        """Index variables summed over (absent from the left-hand side)."""
        return [v for v in self.index_vars if v not in self.lhs.indices]

    def __repr__(self):
        return "%r = %s" % (self.lhs, " + ".join(repr(t) for t in self.terms))


_REF_RE = re.compile(r"^([A-Za-z_]\w*)\(([^)]*)\)$")
_NAME_RE = re.compile(r"^[A-Za-z_]\w*$")


def _parse_factor(text):
    text = text.strip()
    match = _REF_RE.match(text)
    if match:
        indices = [i.strip() for i in match.group(2).split(",") if i.strip()]
        if not indices:
            raise ParseError("tensor reference %r has no indices" % text)
        return TensorRef(match.group(1), indices)
    if _NAME_RE.match(text):
        return text  # scalar symbol
    raise ParseError("cannot parse factor %r" % text)


def _split_terms(text):
    """Split on top-level + and - (no parentheses in this subset)."""
    terms = []
    sign = 1
    current = []
    for ch in text:
        if ch == "+" or ch == "-":
            if current and current[-1] in "*(":
                raise ParseError("unary signs are not supported in %r" % text)
            if "".join(current).strip():
                terms.append((sign, "".join(current)))
            sign = 1 if ch == "+" else -1
            current = []
        else:
            current.append(ch)
    if "".join(current).strip():
        terms.append((sign, "".join(current)))
    if not terms:
        raise ParseError("empty expression")
    return terms


def parse_expression(text):
    """Parse ``lhs = rhs`` into a :class:`TensorExpr`."""
    if text.count("=") != 1:
        raise ParseError("expression must contain exactly one '='")
    lhs_text, rhs_text = text.split("=")
    lhs = _parse_factor(lhs_text)
    if not isinstance(lhs, TensorRef):
        raise ParseError("left-hand side must be a tensor reference")
    terms = []
    for sign, term_text in _split_terms(rhs_text):
        scalars = []
        refs = []
        for factor_text in term_text.split("*"):
            factor = _parse_factor(factor_text)
            if isinstance(factor, TensorRef):
                refs.append(factor)
            else:
                scalars.append(factor)
        if not refs:
            raise ParseError("term %r has no tensor reference" % term_text.strip())
        terms.append(Term(sign, scalars, refs))
    return TensorExpr(lhs, terms)
