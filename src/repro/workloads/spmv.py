"""Sparse Matrix-Vector multiplication, CSR (GARDENIA suite).

``y = A @ x`` with A in CSR: one accumulation loop per row over the
``crd``/``val`` coordinate streams plus an indirect gather of ``x``. The
gather is the irregular access — exactly the indirect-then-load shape RAs
offload — while the row bounds, coordinates, and values all stream.

Every variant is exact: each ``y[i]`` is one row's serial accumulation,
and both the pipeline and the row-partitioned data-parallel variant
preserve each row's accumulation order.
"""

import random

from ..frontend.lowering import compile_source
from ..ir import (
    Ctrl,
    IRBuilder,
    PipelineProgram,
    QueueSpec,
    RA_INDIRECT,
    RA_SCAN,
    RASpec,
    StageProgram,
)

NAME = "spmv"

SOURCE = """
#pragma phloem
void spmv(const int* restrict pos, const int* restrict crd,
          const double* restrict val, const double* restrict x,
          double* restrict y, int nrows) {
  for (int i = 0; i < nrows; i++) {
    int start = pos[i];
    int end = pos[i + 1];
    double acc = 0.0;
    for (int e = start; e < end; e++) {
      int k = crd[e];
      acc = acc + val[e] * x[k];
    }
    y[i] = acc;
  }
}
"""

_cache = {}


def function():
    if "f" not in _cache:
        _cache["f"] = compile_source(SOURCE)
    return _cache["f"].clone()


def dense_vector(ncols, seed=0):
    """Deterministic dense input vector (seeded, hash-independent)."""
    rng = random.Random("spmv-x-%d-%d" % (ncols, seed))
    return [rng.uniform(0.5, 1.5) for _ in range(ncols)]


def make_env(a):
    arrays = {
        "pos": list(a.pos),
        "crd": list(a.crd),
        "val": list(a.val),
        "x": dense_vector(a.ncols),
        "y": [0.0] * a.nrows,
    }
    scalars = {"nrows": a.nrows}
    return arrays, scalars


def reference(a):
    """Oracle product: the same row-major accumulation in pure Python."""
    x = dense_vector(a.ncols)
    y = [0.0] * a.nrows
    pos, crd, val = a.pos, a.crd, a.val
    for i in range(a.nrows):
        acc = 0.0
        for e in range(pos[i], pos[i + 1]):
            acc = acc + val[e] * x[crd[e]]
        y[i] = acc
    return y


def check(arrays, a):
    return arrays["y"] == reference(a)


# ---------------------------------------------------------------------------
# Manually pipelined variant


def manual_pipeline():
    """Driver + accumulate stage over three RAs.

    Row bounds feed two scan RAs; the coordinate stream is chained into
    an indirect RA over ``x``, so the gather — the only irregular access
    — is fully offloaded and the accumulate stage just multiplies two
    in-order streams. Rows are NEXT-delimited; per-row accumulation
    order matches the serial kernel exactly.
    """
    func = function()
    Q_C_IN, Q_V_IN, Q_CRD, Q_XV, Q_VAL = 0, 1, 2, 3, 4

    b = IRBuilder(temp_prefix="%m")
    with b.for_("i", 0, "nrows"):
        s = b.load("@pos", "i")
        e = b.load("@pos", b.binop("add", "i", 1))
        b.enq(Q_C_IN, s)
        b.enq(Q_C_IN, e)
        b.enq_ctrl(Q_C_IN, Ctrl.NEXT)
        b.enq(Q_V_IN, s)
        b.enq(Q_V_IN, e)
        b.enq_ctrl(Q_V_IN, Ctrl.NEXT)
    stage0 = StageProgram(0, "drive", b.finish())

    b = IRBuilder(temp_prefix="%u")
    with b.for_("i", 0, "nrows"):
        b.mov(0.0, dst="acc")
        with b.loop():
            xv = b.deq(Q_XV)
            at_end = b.is_control(xv)
            with b.if_(at_end):
                b.deq(Q_VAL)  # consume the aligned marker
                b.break_()
            vv = b.deq(Q_VAL)
            b.binop("add", "acc", b.binop("mul", vv, xv), dst="acc")
        b.store("@y", "i", "acc")
    stage1 = StageProgram(1, "accumulate", b.finish())

    queues = [
        QueueSpec(Q_C_IN, ("stage", 0), ("ra", 0), 24, "crd bounds"),
        QueueSpec(Q_V_IN, ("stage", 0), ("ra", 2), 24, "val bounds"),
        QueueSpec(Q_CRD, ("ra", 0), ("ra", 1), 24, "coords"),
        QueueSpec(Q_XV, ("ra", 1), ("stage", 1), 24, "x gathers"),
        QueueSpec(Q_VAL, ("ra", 2), ("stage", 1), 24, "values"),
    ]
    ras = [
        RASpec(0, RA_SCAN, "@crd", Q_C_IN, Q_CRD),
        RASpec(1, RA_INDIRECT, "@x", Q_CRD, Q_XV),
        RASpec(2, RA_SCAN, "@val", Q_V_IN, Q_VAL),
    ]
    return PipelineProgram(
        "spmv_manual",
        [stage0, stage1],
        queues,
        ras,
        func.arrays,
        func.scalar_params,
        meta={"manual": True},
    )


# ---------------------------------------------------------------------------
# Data-parallel variant


def data_parallel(nthreads):
    """Row-striped SpMV: no shared writes, exact in any interleaving."""
    func = function()
    stages = []
    for tid in range(nthreads):
        b = IRBuilder(temp_prefix="%d")
        with b.for_("i", tid, "nrows", nthreads):
            s = b.load("@pos", "i")
            e = b.load("@pos", b.binop("add", "i", 1))
            b.mov(0.0, dst="acc")
            with b.for_("e", s, e):
                k = b.load("@crd", "e")
                xv = b.load("@x", k)
                vv = b.load("@val", "e")
                b.binop("add", "acc", b.binop("mul", vv, xv), dst="acc")
            b.store("@y", "i", "acc")
        stages.append(StageProgram(tid, "worker%d" % tid, b.finish()))
    return PipelineProgram(
        "spmv_dp%d" % nthreads,
        stages,
        [],
        [],
        func.arrays,
        func.scalar_params + ["nthreads"],
        meta={"data_parallel": True},
    )


def make_env_dp(a, nthreads):
    arrays, scalars = make_env(a)
    scalars["nthreads"] = nthreads
    return arrays, scalars
