"""NDJSON framing and envelope helpers."""

import pytest

from repro.api import ApiError, MetricsRequest, Response
from repro.service import protocol


def test_encode_decode_round_trip():
    envelope = protocol.request_envelope(MetricsRequest(bench="bfs"), client="t")
    line = protocol.encode(envelope)
    assert line.endswith(b"\n") and line.count(b"\n") == 1
    assert protocol.decode(line) == envelope


def test_decode_rejects_junk():
    with pytest.raises(ApiError):
        protocol.decode(b"not json\n")
    with pytest.raises(ApiError):
        protocol.decode(b"\n")
    with pytest.raises(ApiError):
        protocol.decode(b"[1, 2]\n")


def test_control_envelope_validates_action():
    wire = protocol.control_envelope("ping", client="t")
    assert protocol.is_control(wire)
    assert not protocol.is_control(MetricsRequest().to_wire())
    with pytest.raises(ApiError):
        protocol.control_envelope("reboot")


def test_every_control_action_builds_an_envelope():
    assert set(protocol.CONTROL_ACTIONS) == {"ping", "stats", "telemetry", "shutdown"}
    for action in protocol.CONTROL_ACTIONS:
        wire = protocol.control_envelope(action, client="t")
        assert protocol.is_control(wire)
        assert protocol.decode(protocol.encode(wire)) == wire


def test_response_message_strips_streamed_records():
    response = Response(verb="metrics", records=[{"a": 1}, {"b": 2}])
    message = protocol.response_message(response.to_wire(), streamed=2)
    assert message["kind"] == "response"
    assert message["streamed"] == 2
    assert message["payload"]["payload"]["records"] == []
    # The original wire object is untouched.
    assert len(response.to_wire()["payload"]["records"]) == 2


def test_default_socket_path_env_override(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_SOCKET", str(tmp_path / "x.sock"))
    assert protocol.default_socket_path() == str(tmp_path / "x.sock")
    monkeypatch.delenv("REPRO_SOCKET")
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    path = protocol.default_socket_path(create_dir=True)
    assert path == str(tmp_path / "cache" / "serve.sock")
    assert (tmp_path / "cache").is_dir()
