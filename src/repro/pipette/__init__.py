"""The Pipette hardware substrate, simulated.

An event-driven, cycle-accounting model of the paper's baseline
architecture (Sec. III): SMT out-of-order cores with architecturally
visible queues, reference accelerators, control values, a three-level cache
hierarchy, and bandwidth-limited DRAM.
"""

from .config import (
    PIPETTE_1CORE,
    PIPETTE_4CORE,
    SCALED_1CORE,
    SCALED_4CORE,
    CacheConfig,
    MachineConfig,
)
from .energy import ENERGY_PJ, EnergyBreakdown, energy_of
from .machine import Machine, RunSpec, SimResult
from .mem import AddressMap, Cache, MemorySystem
from .queues import HWQueue
from .sched import BarrierSync, IssueLedger, Scheduler, SharedCells, Task
from .stats import SimStats, ThreadStats

__all__ = [
    "PIPETTE_1CORE",
    "PIPETTE_4CORE",
    "SCALED_1CORE",
    "SCALED_4CORE",
    "CacheConfig",
    "MachineConfig",
    "ENERGY_PJ",
    "EnergyBreakdown",
    "energy_of",
    "Machine",
    "RunSpec",
    "SimResult",
    "AddressMap",
    "Cache",
    "MemorySystem",
    "HWQueue",
    "BarrierSync",
    "IssueLedger",
    "Scheduler",
    "SharedCells",
    "Task",
    "SimStats",
    "ThreadStats",
]
