"""Control-value passes on synthetic pipelines (beyond the BFS path)."""

from repro import ir
from repro.core.ctrl import apply_control_handlers, apply_control_values, apply_interstage_dce
from repro.pipette import Machine, MachineConfig, RunSpec


def _bounded_pair():
    """Producer streams variable-length bursts; consumer gets queued bounds."""
    b0 = ir.IRBuilder()
    with b0.for_("i", 0, "n"):
        lo = b0.load("@bounds", "i", dst="lo")
        hi = b0.load("@bounds", b0.binop("add", "i", 1), dst="hi")
        b0.enq(1, "lo")
        b0.enq(2, "hi")
        with b0.for_("e", "lo", "hi"):
            v = b0.load("@data", "e", dst="v")
            b0.enq(0, "v")
    s0 = ir.StageProgram(0, "p", b0.finish())

    b1 = ir.IRBuilder()
    b1.mov(0, dst="acc")
    with b1.for_("i", 0, "n"):
        lo = b1.deq(1, dst="clo")
        hi = b1.deq(2, dst="chi")
        with b1.for_("e", "clo", "chi"):
            v = b1.deq(0, dst="x")
            b1.binop("add", "acc", "x", dst="acc")
    b1.store("@out", 0, "acc")
    s1 = ir.StageProgram(1, "c", b1.finish())

    return ir.PipelineProgram(
        "t",
        [s0, s1],
        [
            ir.QueueSpec(0, ("stage", 0), ("stage", 1)),
            ir.QueueSpec(1, ("stage", 0), ("stage", 1)),
            ir.QueueSpec(2, ("stage", 0), ("stage", 1)),
        ],
        [],
        {name: ir.ArrayDecl(name) for name in ("bounds", "data", "out")},
        ["n"],
    )


def _run(pipe):
    bounds = [0, 2, 2, 5]
    data = [3, 4, 10, 20, 30]
    res = Machine(MachineConfig()).run(
        RunSpec(pipe, {"bounds": bounds, "data": data, "out": [0]}, {"n": 3})
    )
    assert res.arrays()["out"] == [sum(data)]
    return res


def test_baseline_runs():
    _run(_bounded_pair())


def test_cv_removes_bounds_queues():
    pipe = _bounded_pair()
    apply_control_values(pipe)
    assert set(pipe.queues) == {0}
    # Producer now marks burst ends in-band.
    markers = [
        s
        for stage in pipe.stages
        for s in stage.all_stmts()
        if s.kind == "enq_ctrl" and s.ctrl.name == ir.Ctrl.NEXT
    ]
    assert markers
    # Consumer's inner For became an unbounded loop with an is_control test.
    consumer = pipe.stages[1]
    kinds = [s.kind for s in ir.walk(consumer.body)]
    assert "is_control" in kinds
    _run(pipe)


def test_dce_collapses_to_single_stream():
    pipe = _bounded_pair()
    apply_control_values(pipe)
    apply_interstage_dce(pipe)
    consumer = pipe.stages[1]
    fors = [s for s in ir.walk(consumer.body) if s.kind == "for"]
    assert not fors  # outer counted loop gone
    dones = [
        s
        for s in pipe.stages[0].all_stmts()
        if s.kind == "enq_ctrl" and s.ctrl.name == ir.Ctrl.DONE
    ]
    assert len(dones) == 1
    _run(pipe)


def test_handlers_replace_checks():
    pipe = _bounded_pair()
    apply_control_values(pipe)
    apply_interstage_dce(pipe)
    apply_control_handlers(pipe)
    consumer = pipe.stages[1]
    assert 0 in consumer.handlers
    kinds = [s.kind for s in ir.walk(consumer.body)]
    assert "is_control" not in kinds
    _run(pipe)


def test_cv_skips_loop_with_used_var():
    """If the loop variable is used in the body, CV must not convert."""
    b0 = ir.IRBuilder()
    b0.enq(1, 0)
    b0.enq(2, "n")
    with b0.for_("e", 0, "n"):
        v = b0.load("@data", "e", dst="v")
        b0.enq(0, "v")
    s0 = ir.StageProgram(0, "p", b0.finish())
    b1 = ir.IRBuilder()
    lo = b1.deq(1, dst="lo")
    hi = b1.deq(2, dst="hi")
    with b1.for_("e", "lo", "hi"):
        v = b1.deq(0, dst="x")
        b1.store("@out", "e", "x")  # uses e: conversion would lose it
    s1 = ir.StageProgram(1, "c", b1.finish())
    pipe = ir.PipelineProgram(
        "t",
        [s0, s1],
        [
            ir.QueueSpec(0, ("stage", 0), ("stage", 1)),
            ir.QueueSpec(1, ("stage", 0), ("stage", 1)),
            ir.QueueSpec(2, ("stage", 0), ("stage", 1)),
        ],
        [],
        {name: ir.ArrayDecl(name) for name in ("data", "out")},
        ["n"],
    )
    apply_control_values(pipe)
    assert set(pipe.queues) == {0, 1, 2}  # untouched


def test_cv_skips_reused_bounds():
    """Bounds used beyond the loop header must keep their queues."""
    b0 = ir.IRBuilder()
    b0.enq(1, 0)
    b0.enq(2, "n")
    with b0.for_("e", 0, "n"):
        v = b0.load("@data", "e", dst="v")
        b0.enq(0, "v")
    s0 = ir.StageProgram(0, "p", b0.finish())
    b1 = ir.IRBuilder()
    lo = b1.deq(1, dst="lo")
    hi = b1.deq(2, dst="hi")
    with b1.for_("e", "lo", "hi"):
        v = b1.deq(0, dst="x")
    b1.store("@out", 0, "hi")  # second use of the bound
    s1 = ir.StageProgram(1, "c", b1.finish())
    pipe = ir.PipelineProgram(
        "t",
        [s0, s1],
        [
            ir.QueueSpec(0, ("stage", 0), ("stage", 1)),
            ir.QueueSpec(1, ("stage", 0), ("stage", 1)),
            ir.QueueSpec(2, ("stage", 0), ("stage", 1)),
        ],
        [],
        {name: ir.ArrayDecl(name) for name in ("data", "out")},
        ["n"],
    )
    apply_control_values(pipe)
    assert set(pipe.queues) == {0, 1, 2}
