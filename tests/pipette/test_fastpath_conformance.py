"""Differential conformance: fast path ≡ reference interpreter, bit for bit.

Every shipped workload — the five paper benchmarks (static, data-parallel,
and manual-pipeline variants), the Taco kernels, and the demo figure
output — runs under both execution engines, and every observable must be
identical: final arrays, total cycles, the full ``SimStats.summary()``
(stall buckets, queue traffic, cache hit counts), the Fig. 10 cycle
breakdown, and the energy model. Any divergence is a fast-path bug by
definition: the reference interpreter is the oracle.
"""

import os
import pathlib
import subprocess
import sys

import pytest

REPO_ROOT = str(pathlib.Path(__file__).resolve().parents[2])

from repro.bench.harness import adapter_for
from repro.core import compile_c, compile_function
from repro.runtime import run_pipeline
from repro.workloads.matrices import random_matrix

BENCHES = ("bfs", "cc", "prd", "radii", "spmm")


def _both_engines(pipeline, arrays, scalars, config):
    slow = run_pipeline(pipeline, arrays, scalars, config=config, fastpath=False)
    fast = run_pipeline(pipeline, arrays, scalars, config=config, fastpath=True)
    return slow, fast


def _assert_identical(slow, fast):
    assert fast.arrays == slow.arrays
    assert fast.cycles == slow.cycles
    assert fast.stats.summary() == slow.stats.summary()
    assert fast.breakdown() == slow.breakdown()
    assert fast.energy().as_dict() == slow.energy().as_dict()


def _bench_data(name, tiny_graph, micro_graph, small=False):
    if name == "spmm":
        return random_matrix(40 if small else 60, 4, seed=3)
    return micro_graph if small else tiny_graph


@pytest.mark.parametrize("name", BENCHES)
def test_static_pipeline_conformance(name, tiny_graph, micro_graph, tiny_config):
    adapter = adapter_for(name)
    data = _bench_data(name, tiny_graph, micro_graph)
    arrays, scalars = adapter.env(data)
    pipeline = compile_function(adapter.function(), num_stages=4)
    slow, fast = _both_engines(pipeline, arrays, scalars, tiny_config)
    _assert_identical(slow, fast)
    assert adapter.check(fast.arrays, data)


@pytest.mark.parametrize("name", BENCHES)
def test_data_parallel_conformance(name, tiny_graph, micro_graph, tiny_config):
    adapter = adapter_for(name)
    data = _bench_data(name, tiny_graph, micro_graph, small=True)
    arrays, scalars = adapter.dp_env(data, 3)
    pipeline = adapter.dp_pipeline(3)
    slow, fast = _both_engines(pipeline, arrays, scalars, tiny_config)
    _assert_identical(slow, fast)


@pytest.mark.parametrize("name", BENCHES)
def test_manual_pipeline_conformance(name, tiny_graph, micro_graph, tiny_config):
    adapter = adapter_for(name)
    data = _bench_data(name, tiny_graph, micro_graph, small=True)
    arrays, scalars = adapter.env(data)
    pipeline = adapter.manual()
    slow, fast = _both_engines(pipeline, arrays, scalars, tiny_config)
    _assert_identical(slow, fast)


def _taco_cases():
    from repro.taco import (
        ALPHA,
        BETA,
        dense_input,
        mtmul_kernel,
        residual_kernel,
        sddmm_kernel,
        spmv_kernel,
    )

    matrix = random_matrix(60, 4, seed=21)
    cases = []
    kernel = spmv_kernel()
    cases.append((kernel, kernel.bind({"A": matrix, "x": dense_input(matrix.ncols, 1)})))
    kernel = residual_kernel()
    cases.append(
        (
            kernel,
            kernel.bind(
                {
                    "A": matrix,
                    "x": dense_input(matrix.ncols, 2),
                    "b": dense_input(matrix.nrows, 3),
                }
            ),
        )
    )
    small = random_matrix(25, 4, seed=22)
    kdim = 6
    kernel = sddmm_kernel()
    cases.append(
        (
            kernel,
            kernel.bind(
                {
                    "B": small,
                    "C": (dense_input(small.nrows * kdim, 6), kdim),
                    "D": (dense_input(kdim * small.ncols, 7), small.ncols),
                }
            ),
        )
    )
    kernel = mtmul_kernel()
    cases.append(
        (
            kernel,
            kernel.bind(
                {
                    "A": matrix,
                    "x": dense_input(matrix.nrows, 4),
                    "z": dense_input(matrix.ncols, 5),
                    "alpha": ALPHA,
                    "beta": BETA,
                }
            ),
        )
    )
    return cases


def test_taco_kernels_conformance(tiny_config):
    for kernel, (arrays, scalars) in _taco_cases():
        pipeline = compile_c(kernel.source, num_stages=4)
        slow, fast = _both_engines(pipeline, arrays, scalars, tiny_config)
        _assert_identical(slow, fast)


def test_demo_stdout_identical_across_engines(tmp_path):
    """The figure-facing stdout of ``repro demo`` is engine-independent."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    env["REPRO_QUIET"] = "1"
    env["REPRO_CACHE_DIR"] = str(tmp_path / "cache")
    cmd = [sys.executable, "-m", "repro", "demo", "bfs", "--size", "200", "--seed", "3"]

    env.pop("REPRO_SLOWPATH", None)
    fast = subprocess.run(
        cmd, capture_output=True, text=True, env=env, cwd=REPO_ROOT
    )
    env["REPRO_SLOWPATH"] = "1"
    slow = subprocess.run(
        cmd, capture_output=True, text=True, env=env, cwd=REPO_ROOT
    )
    assert fast.returncode == 0, fast.stderr
    assert slow.returncode == 0, slow.stderr
    assert fast.stdout == slow.stdout
