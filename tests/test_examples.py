"""The example scripts at least import (their mains are exercised by CI
runs; importing catches API drift cheaply)."""

import importlib.util
import pathlib

import pytest

EXAMPLES = sorted(
    p.stem for p in (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


def test_examples_present():
    assert "quickstart" in EXAMPLES
    assert len(EXAMPLES) >= 6


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_imports(name):
    path = pathlib.Path(__file__).parent.parent / "examples" / ("%s.py" % name)
    spec = importlib.util.spec_from_file_location("example_%s" % name, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    assert callable(module.main)
