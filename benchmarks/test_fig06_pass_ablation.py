"""Regenerates paper Fig. 6: BFS speedup as passes are added.

Expected shape (paper): the dataflow-style mapping is *worse* than serial;
queues alone give a modest pipeline; adding control values *without* DCE
dips; DCE/handlers recover; reference accelerators give the largest jump;
all passes together approach (or match) the manually tuned pipeline.
"""

from repro.bench.experiments import fig6_pass_ablation


def test_fig6(once):
    result = once(fig6_pass_ablation)
    print(result["text"])
    s = result["speedups"]
    assert s["Dataflow-style"] < 1.05  # dataflow-style does not beat serial
    assert s["CV+R+Q"] < s["R+Q"]  # control values alone hurt (paper Sec. IV-B)
    assert s["DCE+CV+R+Q"] > s["CV+R+Q"]  # DCE recovers them
    assert s["All passes"] > 1.5
    assert s["All passes"] > 0.85 * s["Manually pipelined"]  # ~matches manual
