"""Flow-insensitive definition/use maps over a region tree.

Phloem's passes are deliberately simple (paper Sec. I: "simple, composable
passes that leverage simple static analyses"); a flow-insensitive map is
conservative but sufficient for the structured kernels the frontend emits,
where temporaries are single-definition and named variables are mutated in
predictable scalar patterns (accumulators, counters).
"""

from __future__ import annotations

from typing import Any, Iterable, Optional

from ..ir.stmts import walk


class DefUse:
    """Definition and use sites of every register in a body."""

    def __init__(self, body: Any) -> None:
        self.defs: dict[str, list[Any]] = {}
        self.uses: dict[str, list[Any]] = {}
        self.body = body
        for stmt in walk(body):
            for reg in stmt.defs():
                self.defs.setdefault(reg, []).append(stmt)
            for reg in stmt.uses():
                self.uses.setdefault(reg, []).append(stmt)

    def defining_stmts(self, reg: str) -> list[Any]:
        return self.defs.get(reg, [])

    def single_def(self, reg: str) -> Optional[Any]:
        """The unique defining statement of ``reg``, or None."""
        stmts = self.defs.get(reg, [])
        return stmts[0] if len(stmts) == 1 else None

    def use_count(self, reg: str) -> int:
        return len(self.uses.get(reg, []))


def pure_regs(body: Any, params: Iterable[str]) -> set[str]:
    """Registers whose values are computable from scalar parameters alone.

    A register is *pure* if every definition is an ``Assign``/``ReadShared``
    whose register operands are themselves pure, or it is the induction
    variable of a ``For`` loop with pure bounds. Pure values can be
    *replicated* across pipeline stages (each stage recomputes them) instead
    of being communicated — the enabling fact behind the recompute pass and
    phase-scalar replication.
    """
    du = DefUse(body)
    pure: set[str] = set(params)

    def operand_pure(a: Any) -> bool:
        # Constants and array symbols (handles) are always pure.
        return type(a) is not str or a.startswith("@") or a in pure

    changed = True
    while changed:
        changed = False
        for reg, stmts in du.defs.items():
            if reg in pure:
                continue
            ok = True
            for stmt in stmts:
                if stmt.kind == "assign":
                    if not all(operand_pure(a) for a in stmt.args):
                        ok = False
                        break
                elif stmt.kind == "read_shared":
                    continue
                elif stmt.kind == "for":
                    if not all(operand_pure(a) for a in (stmt.lo, stmt.hi, stmt.step)):
                        ok = False
                        break
                else:
                    ok = False
                    break
            if ok:
                pure.add(reg)
                changed = True

    # Array-handle registers (pointer locals) may be defined in *cycles* —
    # BFS's fringe swap is `tmp = cur; cur = next; next = tmp` — which a
    # least fixpoint cannot prove. Handles only ever flow through `mov`s, so
    # a greatest fixpoint over mov-closed registers is sound for them: start
    # from every register defined solely by movs of array symbols or other
    # candidates and peel away violators.
    handle_candidates: set[str] = set()
    for reg, stmts in du.defs.items():
        if all(s.kind == "assign" and s.op == "mov" for s in stmts):
            handle_candidates.add(reg)
    changed = True
    while changed:
        changed = False
        for reg in list(handle_candidates):
            for stmt in du.defs[reg]:
                arg = stmt.args[0]
                if type(arg) is str and not arg.startswith("@"):
                    if arg not in handle_candidates and arg not in pure:
                        handle_candidates.discard(reg)
                        changed = True
                        break
                elif type(arg) is not str:
                    # A numeric mov chain is fine too (still replicable).
                    continue
    pure |= handle_candidates
    return pure
