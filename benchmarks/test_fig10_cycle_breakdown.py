"""Regenerates paper Fig. 10: cycle breakdowns normalized to serial.

Expected shape: serial is dominated by backend (memory) and other
(mispredict) stalls; pipelined variants introduce queue-stall components
but shrink total normalized cycles.
"""

from repro.bench.experiments import fig10_cycle_breakdown


def test_fig10(once):
    result = once(fig10_cycle_breakdown)
    print(result["text"])
    table = result["breakdowns"]
    for name, variants in table.items():
        serial_total = sum(variants["serial"].values())
        assert abs(serial_total - 1.0) < 1e-6, name  # normalized to itself
        assert variants["serial"]["queue"] == 0.0
        if name != "spmm":
            phloem_total = sum(variants["phloem"].values())
            assert phloem_total < serial_total, name
            assert variants["phloem"]["queue"] > 0.0, name
