"""Dataflow-style baseline (the paper's Dynamatic experiment, Sec. IV-B).

The paper mapped BFS onto a dataflow graph with Dynamatic and simulated
dataflow firing; the result was *1.7x worse than serial* because "dataflow
graphs propagate significant amounts of program state across stages" —
every operation pays token/state-forwarding overhead. We reproduce that
negative result structurally: a transform that inserts the token-matching
micro-ops (two extra register moves per productive operation, the state a
dataflow PE forwards with each firing) and runs the result through the same
simulator.
"""

from ..ir import stmts as S
from ..ir.program import serial_pipeline

#: Handshake stages a value crosses between dataflow firings.
TOKEN_OVERHEAD = 2

_PRODUCTIVE = frozenset(["assign", "load", "call", "atomic_rmw"])


def _instrument(body, counter):
    out = []
    for stmt in body:
        for block in stmt.blocks():
            block[:] = _instrument(block, counter)
        out.append(stmt)
        if stmt.kind in _PRODUCTIVE and stmt.defs():
            # Each produced value is re-written through TOKEN_OVERHEAD moves
            # *on its own dependence path*: downstream consumers see the
            # handshake latency, which is how dataflow state propagation
            # "ruins throughput in the same way as extra instructions in
            # serial programs' inner loops" (Sec. IV-B).
            dst = stmt.defs()[0]
            for _ in range(TOKEN_OVERHEAD):
                out.append(S.Assign(dst, "mov", [dst]))
                counter[0] += 1
        elif stmt.kind == "store":
            reg = "%%df%d" % counter[0]
            counter[0] += 1
            out.append(S.Assign(reg, "mov", [0]))
    return out


def dataflow_variant(function):
    """A single-stage pipeline modeling dataflow-style execution."""
    work = function.clone()
    counter = [0]
    work.body = _instrument(work.body, counter)
    pipeline = serial_pipeline(work, name="%s_dataflow" % function.name)
    pipeline.meta["dataflow"] = True
    return pipeline
