"""Access classification: the cost model's view of BFS matches Sec. V."""

from repro.analysis.access import INDIRECT, SEQUENTIAL, affine_root, classify_loads
from repro.analysis.defs import DefUse
from repro.frontend import compile_source
from repro.workloads import bfs


def _by_class(function):
    return {info.cls: info for info in classify_loads(function.body)}


def test_bfs_classification():
    f = compile_source(bfs.SOURCE)
    infos = _by_class(f)
    assert infos["cur_fringe"].kind == SEQUENTIAL
    assert infos["@edges"].kind == SEQUENTIAL  # a scan over data-dependent bounds
    assert infos["@edges"].indirection >= 1
    assert infos["@nodes"].kind == INDIRECT
    assert infos["@distances"].kind == INDIRECT
    assert infos["@distances"].indirection >= infos["@nodes"].indirection


def test_loop_depths_recorded():
    f = compile_source(bfs.SOURCE)
    infos = _by_class(f)
    assert infos["@distances"].depth == infos["@edges"].depth
    assert infos["@nodes"].depth < infos["@edges"].depth


def test_affine_root_offsets():
    src = """
    void k(const int* restrict a, int* restrict out, int n) {
      for (int i = 0; i < n; i++) {
        out[i] = a[i + 1] + a[i];
      }
    }
    """
    f = compile_source(src)
    du = DefUse(f.body)
    loads = [s for s in f.all_stmts() if s.kind == "load"]
    roots = sorted(affine_root(load.index, du) for load in loads)
    assert roots == [("i", 0), ("i", 1)]


def test_constant_index_is_sequential():
    src = "void k(const int* restrict a, int* restrict out) { out[0] = a[7]; }"
    infos = classify_loads(compile_source(src).body)
    assert all(i.kind == SEQUENTIAL for i in infos if i.cls == "@a")


def test_two_level_indirection_depth():
    src = """
    void k(const int* restrict a, const int* restrict b, const int* restrict c,
           int* restrict out, int n) {
      for (int i = 0; i < n; i++) {
        out[i] = c[b[a[i]]];
      }
    }
    """
    infos = {i.cls: i for i in classify_loads(compile_source(src).body)}
    assert infos["@a"].kind == SEQUENTIAL
    assert infos["@b"].indirection == 1
    assert infos["@c"].indirection == 2
