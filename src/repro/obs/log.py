"""The one diagnostics funnel.

Harness telemetry (wall times, cache hit rates, trace destinations) goes to
stderr through :func:`log` — never through ad-hoc ``print`` calls — so one
switch silences all of it: ``--quiet`` on the CLI (:func:`set_quiet`) or
``REPRO_QUIET=1`` in the environment. Figure *results* stay on stdout and
are unaffected.
"""

import os
import sys

#: Tri-state: None = defer to the REPRO_QUIET environment variable.
_quiet = None


def set_quiet(value):
    """Force diagnostics on (False) or off (True); None defers to env."""
    global _quiet
    _quiet = value


def get_quiet():
    """The raw tri-state override (None/True/False), for save/restore.

    Request handlers (:mod:`repro.api`) flip quiet per request and must
    restore whatever was in force before — in a long-lived service worker
    the process outlives the request.
    """
    return _quiet


def is_quiet():
    """True when diagnostics are suppressed."""
    if _quiet is not None:
        return _quiet
    return bool(os.environ.get("REPRO_QUIET"))


def log(message, *args, **kwargs):
    """Emit one diagnostic line (printf-style) to stderr unless quiet.

    ``file`` may override the destination (tests capture it); everything
    else about the message is plain text.
    """
    if is_quiet():
        return
    if args:
        message = message % args
    print(message, file=kwargs.get("file", sys.stderr))
