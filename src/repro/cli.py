"""Command-line interface: ``python -m repro <command>``.

Commands mirror how the paper's artifact would be driven:

* ``emit FILE.c`` — run the Phloem compiler on a mini-C kernel and print
  the pipeline (pseudo-C, IR, or a one-line summary);
* ``demo BENCH`` — run one benchmark (bfs/cc/prd/radii/spmm) on a synthetic
  input, comparing serial / data-parallel / Phloem / manual;
* ``search BENCH`` — run the profile-guided pipeline search and print the
  Fig. 13-style distribution;
* ``figures [NAME...]`` — regenerate evaluation figures (fig6..fig14).
"""

import argparse
import sys
import time

from .core import ALL_PASSES, CompileOptions, compile_function, emit_pipeline, pipeline_summary
from .frontend import compile_source
from .ir import format_pipeline
from .pipette import SCALED_1CORE


def _cmd_emit(args):
    with open(args.file) as handle:
        source = handle.read()
    function = compile_source(source, name=args.name)
    passes = ALL_PASSES if args.passes is None else tuple(args.passes.split(","))
    passes = tuple(p for p in passes if p)
    pipeline = compile_function(function, num_stages=args.stages, passes=passes)
    if args.format == "summary":
        print(pipeline_summary(pipeline))
    elif args.format == "ir":
        print(format_pipeline(pipeline))
    elif args.format == "diagram":
        from .core.viz import ascii_diagram

        print(ascii_diagram(pipeline))
    else:
        print(emit_pipeline(pipeline))
    return 0


#: The variants `demo` runs and prints, in order (all use the unified
#: adapter + run_suite path; "phloem-static" is the compiled pipeline).
_DEMO_VARIANTS = ("serial", "data-parallel", "phloem-static", "manual")


def _demo_input(args):
    """One synthetic input item for ``demo`` (graph or matrix)."""
    from .workloads.datasets import GraphInput, MatrixInput
    from .workloads.graphs import uniform_random
    from .workloads.matrices import random_matrix

    if args.bench == "spmm":
        return MatrixInput(
            "demo", "synthetic", lambda: random_matrix(max(40, args.size // 40), 8, seed=args.seed)
        )
    return GraphInput(
        "demo", "synthetic", lambda: uniform_random(args.size, 5, seed=args.seed)
    )


def _cmd_demo(args):
    from .bench.harness import adapter_for, run_suite

    adapter = adapter_for(args.bench)
    item = _demo_input(args)
    print("input: %r" % item.build())
    suite = run_suite(
        adapter,
        [item],
        [],
        config=SCALED_1CORE,
        variants=_DEMO_VARIANTS,
        options=CompileOptions(num_stages=args.stages),
    )
    print("phloem pipeline: %s\n" % pipeline_summary(suite["_meta"]["phloem-static"]))
    base = suite["serial"][0].cycles
    print("%-16s %14s %9s %6s" % ("variant", "cycles", "speedup", "ok"))
    for name in _DEMO_VARIANTS:
        run = suite[name][0]
        print("%-16s %14.0f %8.2fx %6s" % (name, run.cycles, base / run.cycles, run.ok))
    return 0 if all(suite[name][0].ok for name in _DEMO_VARIANTS) else 1


def _cmd_search(args):
    from .bench.harness import adapter_for, profile_guided_pipeline
    from .bench.report import render_distribution
    from .core.autotune import speedup_distribution
    from .workloads import datasets

    adapter = adapter_for(args.bench)
    train = datasets.TRAIN_MATRICES_SPMM if args.bench == "spmm" else datasets.TRAIN_GRAPHS
    best, results = profile_guided_pipeline(adapter, train, config=SCALED_1CORE)
    print(render_distribution("training-set speedups by pipeline length", {args.bench: speedup_distribution(results)}))
    if best is not None:
        print("\nbest: %r" % best)
        print("      %s" % pipeline_summary(best.pipeline))
    return 0


_FIGURES = {
    "fig6": "fig6_pass_ablation",
    "fig9": "fig9_overall_speedup",
    "fig10": "fig10_cycle_breakdown",
    "fig11": "fig11_energy_breakdown",
    "fig12": "fig12_taco",
    "fig13": "fig13_stage_distribution",
    "fig14": "fig14_replication",
}

#: Figures that re-slice the shared Fig. 9 suites (computed once, in the
#: parent, with per-benchmark parallelism) rather than running standalone.
_SUITE_FIGURES = ("fig9", "fig10", "fig11", "fig13")


def _cmd_figures(args):
    from . import cache
    from .bench import experiments, parallel, report

    names = args.names or sorted(_FIGURES)
    for name in names:
        if name not in _FIGURES:
            print("unknown figure %r (choose from %s)" % (name, ", ".join(sorted(_FIGURES))))
            return 2

    jobs = parallel.resolve_jobs(args.jobs)
    parallel.clear_job_log()
    start = time.perf_counter()

    # Two-phase job graph, one pool level deep: the Fig. 9 suites fan out
    # per benchmark, standalone figures fan out per figure; the suite
    # re-slicing figures then run in-parent against the warm suites.
    results = {}
    standalone = [n for n in names if n not in _SUITE_FIGURES]
    if any(n in _SUITE_FIGURES for n in names):
        experiments.ensure_suites(jobs=jobs)
    if standalone:
        job_list = [
            parallel.Job(name, getattr(experiments, _FIGURES[name])) for name in standalone
        ]
        for job_result in parallel.run_jobs(job_list, workers=jobs):
            results[job_result.key] = job_result.value
    for name in names:
        if name not in results:
            results[name] = getattr(experiments, _FIGURES[name])()

    for name in names:
        print(results[name]["text"])
        print()

    # Harness telemetry on stderr, keeping stdout byte-identical to a
    # serial, cache-less run: per-job wall times and cache hit rates (a
    # cold-vs-warm pair of invocations shows the caches working).
    elapsed = time.perf_counter() - start
    print(
        report.render_job_times(parallel.job_log(), workers=jobs, total_wall=elapsed),
        file=sys.stderr,
    )
    print(report.render_cache_stats(cache.stats(), directory=cache.cache_dir()), file=sys.stderr)
    return 0


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Phloem reproduction: compile, simulate, and evaluate.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    emit = sub.add_parser("emit", help="compile a mini-C kernel and print the pipeline")
    emit.add_argument("file")
    emit.add_argument("--name", default=None, help="kernel name if the file has several")
    emit.add_argument("--stages", type=int, default=4)
    emit.add_argument("--passes", default=None, help="comma-separated pass subset")
    emit.add_argument("--format", choices=("c", "ir", "summary", "diagram"), default="c")
    emit.set_defaults(func=_cmd_emit)

    demo = sub.add_parser("demo", help="run one benchmark across all variants")
    demo.add_argument("bench", choices=("bfs", "cc", "prd", "radii", "spmm"))
    demo.add_argument("--size", type=int, default=4000)
    demo.add_argument("--seed", type=int, default=1)
    demo.add_argument("--stages", type=int, default=4)
    demo.set_defaults(func=_cmd_demo)

    search = sub.add_parser("search", help="profile-guided pipeline search")
    search.add_argument("bench", choices=("bfs", "cc", "prd", "radii", "spmm"))
    search.set_defaults(func=_cmd_search)

    figures = sub.add_parser("figures", help="regenerate evaluation figures")
    figures.add_argument("names", nargs="*", metavar="figN")
    figures.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for the harness (default: REPRO_JOBS env or 1)",
    )
    figures.set_defaults(func=_cmd_figures)

    return parser


def main(argv=None):
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
