"""Cycle-domain event tracer for the Pipette simulator.

A :class:`Tracer` collects four kinds of events, all timestamped in
*simulated cycles* (never wall-clock time):

* **spans** — one per scheduler residency of a task: the interval from the
  cycle a task resumed to the cycle it yielded, plus why it yielded
  (queue-blocked with the queue id, barrier, or done);
* **stalls** — the exact intervals the interpreter attributes to the
  Fig. 10 stall buckets (``queue``/``mem``/``branch``/``barrier``). Each
  stall's duration is recorded with the *same float arithmetic* the
  aggregate :class:`~repro.pipette.stats.ThreadStats` counters use, so the
  per-bucket sums match the counters exactly (tolerance 0);
* **counters** — queue occupancy samples, one per enqueue/dequeue, on a
  per-queue counter track;
* **ra_loads** — individual reference-accelerator loads (issue cycle and
  completion cycle).

Cost model: the simulator's hot paths carry a single ``tracer is None``
check; with tracing off no event buffer exists anywhere. The tracer itself
appends plain tuples (no dict/object churn on the hot path); export and
analysis happen after the run (:mod:`repro.obs.chrometrace`,
:mod:`repro.obs.timeline`).
"""

#: Stall buckets, in the order the summarizer reports them. ``mem`` is the
#: paper's "backend" bucket; ``branch`` + ``barrier`` make up "other".
STALL_BUCKETS = ("queue", "mem", "branch", "barrier")


class Tracer:
    """Collects cycle-domain events from one simulation run."""

    __slots__ = ("spans", "stalls", "counters", "ra_loads", "threads", "queues", "meta")

    def __init__(self):
        self.spans = []  # (thread, t0, t1, yield_reason)
        self.stalls = []  # (thread, bucket, t0, t1)
        self.counters = []  # (queue_label, t, occupancy)
        self.ra_loads = []  # (thread, t0, t1)
        self.threads = []  # track order: first-seen thread names
        self.queues = []  # first-seen queue labels
        self.meta = {}

    # -- registration (once per run, off the hot path) ----------------------

    def register_thread(self, name):
        """Declare a task track; keeps track order deterministic."""
        if name not in self.threads:
            self.threads.append(name)

    def register_queue(self, label):
        """Declare a queue counter track."""
        if label not in self.queues:
            self.queues.append(label)

    # -- hot-path hooks ------------------------------------------------------

    def span(self, thread, t0, t1, reason):
        """One scheduler residency of ``thread``: [t0, t1], then ``reason``."""
        self.spans.append((thread, t0, t1, reason))

    def stall(self, thread, bucket, t0, t1):
        """One attributed stall interval; duration ``t1 - t0`` matches the
        exact increment applied to the aggregate counter."""
        self.stalls.append((thread, bucket, t0, t1))

    def counter(self, label, t, value):
        """One occupancy sample of queue ``label`` at cycle ``t``."""
        self.counters.append((label, t, value))

    def ra_load(self, thread, t0, t1):
        """One RA load: issued at ``t0``, completed at ``t1``."""
        self.ra_loads.append((thread, t0, t1))

    # -- post-run views ------------------------------------------------------

    def __len__(self):
        return len(self.spans) + len(self.stalls) + len(self.counters) + len(self.ra_loads)

    def stall_totals(self):
        """``{(thread, bucket): total_cycles}`` summed with plain float
        addition in recording order — the cross-check against
        :class:`~repro.pipette.stats.ThreadStats` counters."""
        totals = {}
        for thread, bucket, t0, t1 in self.stalls:
            key = (thread, bucket)
            totals[key] = totals.get(key, 0.0) + (t1 - t0)
        return totals

    def __repr__(self):
        return "Tracer(%d spans, %d stalls, %d counter samples, %d ra loads)" % (
            len(self.spans),
            len(self.stalls),
            len(self.counters),
            len(self.ra_loads),
        )
