"""Unified experiment reporting (``repro report``).

The repo's evaluation artifacts are rich but scattered: RunRecord JSONL
streams (:mod:`repro.obs.record`), committed perf baselines with their
measurement history (``BENCH_*.json``, :mod:`repro.bench.perf`), lint
diagnostics (``repro lint --json``), timeline summaries
(:mod:`repro.obs.timeline`), and live daemon telemetry
(:mod:`repro.service.telemetry`). This module walks a results directory,
classifies every file by its wire schema, aggregates the lot into one
typed :class:`ExperimentReport`, and renders it as markdown or a
single-file HTML page (stdlib only, no plotting dependency — sparklines
are unicode blocks).

The report answers the GARDENIA-style questions every perf PR should
self-document: per-kernel speedup tables across variants, Fig. 10-style
stall breakdowns, cache effectiveness, lint status, the simulator's
perf trajectory across committed baseline history, and — when a daemon
stats/telemetry snapshot is present — the served traffic's latency
distributions, so an offline experiment and a served session read
identically.

Classification is by schema tag, never by filename: anything the repo's
other subsystems emit is recognized wherever it lands, and unknown files
are listed as skipped rather than guessed at.
"""

import html as _html
import json
import os
from dataclasses import dataclass, field

from .record import RECORD_SCHEMA, merge_records, read_jsonl

#: Schema identity of a rendered report's structured summary.
REPORT_SCHEMA = "repro.obs/experiment-report"
REPORT_VERSION = 1

#: Wire schema tags this module consumes. Spelled out here (rather than
#: imported) because the report is a *consumer* of wire objects: it must
#: recognize files written by any version of the producers without
#: importing their modules.
PERF_BASELINE_SCHEMA = "repro.bench/perf-baseline"
PERF_RECORD_SCHEMA = "repro.bench/perf-record"
TELEMETRY_SCHEMA = "repro.service/telemetry"
LINT_REPORT_SCHEMA = "repro.diag/lint-report"

#: The Fig. 10 cycle buckets, in presentation order. ``branch``/``barrier``
#: are the informational decomposition of ``other`` and stay out of totals.
BREAKDOWN_BUCKETS = ("issue", "backend", "queue", "other")

_SPARK_CHARS = "▁▂▃▄▅▆▇█"


def spark(values):
    """Unicode sparkline of a numeric series (empty series → empty string)."""
    values = [float(v) for v in values]
    if not values:
        return ""
    lo, hi = min(values), max(values)
    if hi <= lo:
        return _SPARK_CHARS[3] * len(values)
    scale = (len(_SPARK_CHARS) - 1) / (hi - lo)
    return "".join(_SPARK_CHARS[int((v - lo) * scale + 0.5)] for v in values)


@dataclass
class ExperimentReport:
    """Everything one results directory said, in one typed value."""

    title: str = "experiment report"
    #: ``[{"file", "kind", "items"}]`` — every file consumed (or skipped).
    sources: list = field(default_factory=list)
    #: Deduplicated RunRecords across every JSONL stream.
    runs: list = field(default_factory=list)
    #: Latest perf baseline payloads (one per ``BENCH_*.json`` consumed).
    perf: list = field(default_factory=list)
    #: Perf history entries across all baselines, in recording order.
    trajectory: list = field(default_factory=list)
    #: Lint reports: ``[{"target", "errors", "warnings", "diagnostics"}]``.
    lint: list = field(default_factory=list)
    #: Timeline summaries (:func:`repro.obs.timeline.summarize_timeline`).
    timelines: list = field(default_factory=list)
    #: Service telemetry snapshots (:mod:`repro.service.telemetry`).
    telemetry: list = field(default_factory=list)

    # -- derived views -------------------------------------------------------

    def kernels(self):
        """Sorted set of benchmark kernels the report covers."""
        names = {r.get("bench") for r in self.runs if r.get("bench")}
        for payload in self.perf:
            names.update(r.get("bench") for r in payload.get("records", []))
        return sorted(n for n in names if n)

    def variants(self):
        """Sorted set of run variants across all RunRecords."""
        return sorted({r.get("variant") for r in self.runs if r.get("variant")})

    def speedup_table(self):
        """``{bench: {variant: {"cycles", "speedup", "ok"}}}`` from runs."""
        table = {}
        for r in self.runs:
            bench, variant = r.get("bench"), r.get("variant")
            if not bench or not variant:
                continue
            table.setdefault(bench, {})[variant] = {
                "cycles": r.get("cycles"),
                "speedup": r.get("speedup"),
                "ok": r.get("ok"),
            }
        return table

    def stall_table(self):
        """``{bench: {variant: breakdown}}`` for runs carrying breakdowns."""
        table = {}
        for r in self.runs:
            breakdown = r.get("breakdown")
            if not breakdown:
                continue
            table.setdefault(r.get("bench"), {})[r.get("variant")] = breakdown
        return table

    def cache_summary(self):
        """Per-layer hit/miss totals, one contribution per source file.

        Records within one stream share the stream's per-request cache
        delta, so summing across records would multiply-count; instead
        each source file contributes its delta once.
        """
        by_file = {}
        for r in self.runs:
            cache = r.get("cache")
            if cache:
                by_file.setdefault(r.get("_source", ""), cache)
        totals = {}
        for cache in by_file.values():
            for layer, counts in cache.items():
                row = totals.setdefault(layer, {"hits": 0, "misses": 0})
                row["hits"] += counts.get("hits", 0)
                row["misses"] += counts.get("misses", 0)
        for row in totals.values():
            total = row["hits"] + row["misses"]
            row["hit_rate"] = round(row["hits"] / total, 4) if total else 0.0
        return totals

    def lint_rollup(self):
        """Totals and per-code counts across every lint report."""
        errors = warnings = 0
        codes = {}
        for entry in self.lint:
            errors += entry.get("errors", 0)
            warnings += entry.get("warnings", 0)
            for diag in entry.get("diagnostics", []):
                code = diag.get("code")
                if code:
                    codes[code] = codes.get(code, 0) + 1
        return {
            "targets": len(self.lint),
            "errors": errors,
            "warnings": warnings,
            "codes": dict(sorted(codes.items())),
        }

    def summary(self):
        """The small schema-stamped record a ``report`` response streams."""
        return {
            "schema": REPORT_SCHEMA,
            "version": REPORT_VERSION,
            "title": self.title,
            "kernels": self.kernels(),
            "variants": self.variants(),
            "sections": {
                "runs": len(self.runs),
                "perf": len(self.perf),
                "trajectory": len(self.trajectory),
                "lint": len(self.lint),
                "timelines": len(self.timelines),
                "telemetry": len(self.telemetry),
            },
            "sources": [s["file"] for s in self.sources if s["kind"] != "skipped"],
            "lint_rollup": self.lint_rollup(),
        }


# ---------------------------------------------------------------------------
# Collection


def _classify(payload):
    """``(kind, items)`` for one parsed JSON payload, by schema tag.

    Lint reports are matched by their ``repro.diag/lint-report`` schema
    tag; the bare-list shape of pre-envelope ``repro lint --json`` output
    is still recognized so archived results directories keep aggregating.
    """
    if isinstance(payload, list):
        if payload and all(
            isinstance(entry, dict) and "diagnostics" in entry for entry in payload
        ):
            return "lint", payload
        return "skipped", None
    if not isinstance(payload, dict):
        return "skipped", None
    schema = payload.get("schema")
    if schema == LINT_REPORT_SCHEMA:
        reports = payload.get("reports")
        return ("lint", reports) if isinstance(reports, list) else ("skipped", None)
    if schema == PERF_BASELINE_SCHEMA:
        return "perf", payload
    if schema == TELEMETRY_SCHEMA:
        return "telemetry", payload
    if isinstance(payload.get("telemetry"), dict) and "counts" in payload:
        # A saved daemon `stats` reply: the telemetry snapshot rides inside.
        return "stats", payload
    if "utilization" in payload and "wall" in payload:
        return "timeline", payload
    return "skipped", None


def _trajectory_entries(perf_payload):
    """History entries of one baseline, oldest first, synthesizing one
    from the latest records when the file predates the history list."""
    entries = list(perf_payload.get("history") or [])
    if not entries and perf_payload.get("records"):
        entries = [
            {
                "git": "(baseline)",
                "scale": perf_payload.get("scale"),
                "aggregate": perf_payload.get("aggregate", {}),
                "benches": {
                    r["bench"]: {
                        "cycles": r.get("cycles"),
                        "fast_wall_s": r.get("fast_wall_s"),
                        "slow_wall_s": r.get("slow_wall_s"),
                        "speedup": r.get("speedup"),
                        "sim_mcycles_per_s": r.get("sim_mcycles_per_s"),
                    }
                    for r in perf_payload["records"]
                },
            }
        ]
    return entries


def collect(results_dir, extra_files=(), title=None):
    """Walk ``results_dir`` (recursively) into one :class:`ExperimentReport`.

    ``extra_files`` are consumed in addition to the directory walk — the
    CLI passes the committed ``BENCH_pipette.json`` so the trajectory
    section works even when the baseline lives outside the results
    directory. Files are visited in sorted order, so the report is
    deterministic for a given tree.
    """
    paths = []
    if results_dir and os.path.isdir(results_dir):
        for dirpath, dirnames, filenames in os.walk(results_dir):
            dirnames.sort()
            for name in sorted(filenames):
                if name.endswith((".json", ".jsonl")):
                    paths.append(os.path.join(dirpath, name))
    seen = {os.path.abspath(p) for p in paths}
    for path in extra_files:
        if path and os.path.exists(path) and os.path.abspath(path) not in seen:
            paths.append(path)
            seen.add(os.path.abspath(path))

    report = ExperimentReport(
        title=title or "experiment report (%s)" % (results_dir or "no directory")
    )
    record_lists = []
    for path in paths:
        display = (
            os.path.relpath(path, results_dir)
            if results_dir and os.path.isdir(results_dir)
            and os.path.abspath(path).startswith(os.path.abspath(results_dir) + os.sep)
            else os.path.basename(path)
        )
        try:
            if path.endswith(".jsonl"):
                records = [
                    dict(r, _source=display)
                    for r in read_jsonl(path)
                    if isinstance(r, dict) and r.get("schema") == RECORD_SCHEMA
                ]
                kind, items = ("runs", len(records)) if records else ("skipped", 0)
                if records:
                    record_lists.append(records)
            else:
                with open(path) as handle:
                    payload = json.load(handle)
                kind, data = _classify(payload)
                items = 0
                if kind == "lint":
                    report.lint.extend(data)
                    items = len(data)
                elif kind == "perf":
                    report.perf.append(data)
                    report.trajectory.extend(_trajectory_entries(data))
                    items = len(data.get("records", []))
                elif kind == "telemetry":
                    report.telemetry.append(data)
                    items = len(data.get("verbs", {}))
                elif kind == "stats":
                    report.telemetry.append(data["telemetry"])
                    items = len(data["telemetry"].get("verbs", {}))
                    kind = "telemetry"
                elif kind == "timeline":
                    report.timelines.append(data)
                    items = len(data.get("utilization", {}))
        except (OSError, ValueError):
            kind, items = "skipped", 0
        report.sources.append({"file": display, "kind": kind, "items": items})

    report.runs = merge_records(*record_lists)
    return report


# ---------------------------------------------------------------------------
# Shared table shaping (both renderers walk the same rows)


def _fmt_num(value, places=2):
    if value is None:
        return "-"
    if isinstance(value, float):
        if value == int(value) and abs(value) >= 1000:
            return "%d" % int(value)
        return ("%%.%df" % places) % value
    return str(value)


def _speedup_rows(report):
    table = report.speedup_table()
    variants = report.variants()
    rows = []
    for bench in sorted(table):
        row = [bench]
        for variant in variants:
            cell = table[bench].get(variant)
            if cell is None:
                row.append("-")
            elif cell.get("speedup") is not None:
                row.append(
                    "%s (%sx)" % (_fmt_num(cell["cycles"], 0), _fmt_num(cell["speedup"]))
                )
            else:
                row.append(_fmt_num(cell["cycles"], 0))
        rows.append(row)
    return ["kernel"] + variants, rows


def _stall_rows(report):
    rows = []
    for bench, variants in sorted(report.stall_table().items()):
        for variant, breakdown in sorted(variants.items()):
            total = sum(breakdown.get(b, 0.0) for b in BREAKDOWN_BUCKETS)
            if total <= 0:
                continue
            rows.append(
                [bench, variant]
                + [
                    "%.1f%%" % (100.0 * breakdown.get(b, 0.0) / total)
                    for b in BREAKDOWN_BUCKETS
                ]
            )
    return ["kernel", "variant"] + ["%s" % b for b in BREAKDOWN_BUCKETS], rows


# Canonical engine ordering and short column labels (mirrors
# repro.pipette.fastpath.ENGINES without importing the simulator here).
_ENGINE_ORDER = ("reference", "fastpath", "batch")
_ENGINE_LABELS = {"reference": "ref", "fastpath": "fast", "batch": "batch"}


def _engine_sorted(names):
    order = {name: i for i, name in enumerate(_ENGINE_ORDER)}
    return sorted(names, key=lambda n: (order.get(n, len(_ENGINE_ORDER)), n))


def _perf_rows(payload):
    records = payload.get("records", [])
    names = []
    for r in records:
        for name in r.get("engines") or ():
            if name not in names:
                names.append(name)
    if not names:
        # Legacy two-engine records: the original fixed columns.
        rows = [
            [
                r.get("bench"),
                _fmt_num(float(r.get("cycles", 0)), 0),
                _fmt_num(r.get("slow_wall_s"), 3),
                _fmt_num(r.get("fast_wall_s"), 3),
                "%sx" % _fmt_num(r.get("speedup")),
                _fmt_num(r.get("sim_mcycles_per_s")),
            ]
            for r in records
        ]
        return ["bench", "cycles", "slow (s)", "fast (s)", "speedup", "Mcyc/s"], rows

    names = _engine_sorted(names)
    header = ["bench", "cycles"]
    header += ["%s (s)" % _ENGINE_LABELS.get(n, n) for n in names]
    header += ["%s (x)" % _ENGINE_LABELS.get(n, n) for n in names if n != "reference"]
    header.append("Mcyc/s")
    rows = []
    for r in records:
        engines = r.get("engines") or {
            "reference": {"wall_s": r.get("slow_wall_s"), "speedup": 1.0},
            "fastpath": {"wall_s": r.get("fast_wall_s"), "speedup": r.get("speedup")},
        }
        row = [r.get("bench"), _fmt_num(float(r.get("cycles", 0)), 0)]
        row += [_fmt_num((engines.get(n) or {}).get("wall_s"), 3) for n in names]
        row += [
            "%sx" % _fmt_num((engines.get(n) or {}).get("speedup"))
            for n in names
            if n != "reference"
        ]
        row.append(_fmt_num(r.get("sim_mcycles_per_s")))
        rows.append(row)
    return header, rows


def _perf_aggregate_text(agg):
    """The parenthetical after the headline aggregate speedup."""
    engines = agg.get("engines")
    if not engines:
        return "slow %ss / fast %ss" % (
            _fmt_num(agg.get("slow_wall_s"), 3),
            _fmt_num(agg.get("fast_wall_s"), 3),
        )
    bits = []
    for name in _engine_sorted(engines):
        row = engines[name] or {}
        bit = "%s %ss" % (_ENGINE_LABELS.get(name, name), _fmt_num(row.get("wall_s"), 3))
        if name != "reference":
            bit += " %sx" % _fmt_num(row.get("speedup"))
        bits.append(bit)
    return "; ".join(bits)


def _trajectory_rows(report):
    rows = []
    for entry in report.trajectory:
        agg = entry.get("aggregate", {})
        rows.append(
            [
                str(entry.get("git", "?")),
                str(entry.get("engine", "fastpath")),
                str(entry.get("scale", "?")),
                "%sx" % _fmt_num(agg.get("speedup")),
                _fmt_num(agg.get("fast_wall_s"), 3),
                str(entry.get("recorded", "")),
            ]
        )
    return (
        ["git", "engine", "scale", "aggregate speedup", "wall (s)", "recorded"],
        rows,
    )


def _trajectory_sparks(report):
    """``[(label, sparkline, latest)]`` series across the history.

    History points are grouped per engine: one baseline update can append a
    point per measured engine, so a flat walk would interleave fastpath and
    batch speedups in a single series. Labels carry the engine only when
    more than one appears; engines with a single point are left to the
    trajectory table.
    """
    groups = {}
    for entry in report.trajectory:
        groups.setdefault(entry.get("engine", "fastpath"), []).append(entry)
    multi = len(groups) > 1
    out = []
    for engine in _engine_sorted(groups):
        entries = groups[engine]
        if len(entries) < 2:
            continue
        suffix = " [%s]" % engine if multi else ""
        series = [
            (
                "aggregate speedup" + suffix,
                [e.get("aggregate", {}).get("speedup") or 0.0 for e in entries],
            )
        ]
        benches = sorted(
            {b for e in entries for b in (e.get("benches") or {})}
        )
        for bench in benches:
            values = [
                ((e.get("benches") or {}).get(bench) or {}).get("sim_mcycles_per_s")
                for e in entries
            ]
            if sum(1 for v in values if v is not None) >= 2:
                series.append(
                    (
                        "%s Mcyc/s%s" % (bench, suffix),
                        [v if v is not None else 0.0 for v in values],
                    )
                )
        out += [
            (label, spark(values), _fmt_num(values[-1]))
            for label, values in series
        ]
    return out


def _telemetry_rows(snapshot):
    rows = []
    for verb, row in sorted(snapshot.get("verbs", {}).items()):
        latency = row.get("latency", {})
        outcomes = row.get("outcomes", {})
        count = latency.get("count", 0)
        mean = (latency.get("sum_s", 0.0) / count) if count else 0.0
        rows.append(
            [
                verb,
                str(row.get("requests", 0)),
                str(outcomes.get("completed", 0)),
                str(outcomes.get("failed", 0)),
                str(outcomes.get("rejected", 0)),
                "%.3f" % mean,
                _fmt_num(latency.get("p50_s"), 3),
                _fmt_num(latency.get("p90_s"), 3),
                _fmt_num(latency.get("p99_s"), 3),
            ]
        )
    return (
        ["verb", "requests", "completed", "failed", "rejected",
         "mean (s)", "p50 (s)", "p90 (s)", "p99 (s)"],
        rows,
    )


def _cache_rows(cache):
    rows = []
    for layer, counts in sorted(cache.items()):
        total = counts.get("hits", 0) + counts.get("misses", 0)
        rate = counts.get("hit_rate")
        if rate is None:
            rate = counts["hits"] / total if total else 0.0
        rows.append(
            [layer, str(counts.get("hits", 0)), str(counts.get("misses", 0)),
             "%.0f%%" % (100.0 * rate)]
        )
    return ["layer", "hits", "misses", "hit rate"], rows


def _timeline_lines(summary):
    lines = ["wall %s cycles" % _fmt_num(float(summary.get("wall", 0.0)), 0)]
    utilization = summary.get("utilization", {})
    busiest = sorted(
        utilization.items(), key=lambda kv: (-kv[1].get("busy", 0.0), kv[0])
    )[:3]
    for thread, row in busiest:
        lines.append(
            "%s: %.0f%% utilized (busy %s)"
            % (thread, 100.0 * row.get("utilization", 0.0), _fmt_num(row.get("busy"), 0))
        )
    top = summary.get("top_stalls") or []
    if top:
        worst = top[0]
        lines.append(
            "worst stall: %s %s for %s cycles at %s"
            % (
                worst.get("thread"),
                worst.get("bucket"),
                _fmt_num(worst.get("cycles"), 0),
                _fmt_num(worst.get("start"), 0),
            )
        )
    return lines


# ---------------------------------------------------------------------------
# Markdown renderer


def _md_table(header, rows):
    if not rows:
        return ["(no data)"]
    lines = ["| " + " | ".join(str(h) for h in header) + " |"]
    lines.append("|" + "|".join(" --- " for _ in header) + "|")
    for row in rows:
        lines.append("| " + " | ".join(str(cell) for cell in row) + " |")
    return lines


def render_markdown(report):
    """The whole report as GitHub-flavored markdown."""
    out = ["# %s" % report.title, ""]
    consumed = [s for s in report.sources if s["kind"] != "skipped"]
    skipped = [s for s in report.sources if s["kind"] == "skipped"]
    out.append(
        "Aggregated from %d file(s)%s: %s"
        % (
            len(consumed),
            " (%d skipped)" % len(skipped) if skipped else "",
            ", ".join("`%s`" % s["file"] for s in consumed) or "none",
        )
    )

    if report.runs:
        out += ["", "## Per-kernel speedups", ""]
        header, rows = _speedup_rows(report)
        out += _md_table(header, rows)
        out.append("")
        out.append("Cells are `cycles (speedup vs serial)`; `-` = variant not run.")

        header, rows = _stall_rows(report)
        if rows:
            out += ["", "## Cycle breakdown (Fig. 10 buckets)", ""]
            out += _md_table(header, rows)

        cache = report.cache_summary()
        if cache:
            out += ["", "## Cache effectiveness", ""]
            header, rows = _cache_rows(cache)
            out += _md_table(header, rows)

    if report.lint:
        rollup = report.lint_rollup()
        out += ["", "## Lint status", ""]
        out.append(
            "%d target(s): **%d error(s), %d warning(s)**%s"
            % (
                rollup["targets"],
                rollup["errors"],
                rollup["warnings"],
                ""
                if not rollup["codes"]
                else " — "
                + ", ".join("%s ×%d" % (c, n) for c, n in rollup["codes"].items()),
            )
        )

    for payload in report.perf:
        out += ["", "## Simulator performance (%s scale)" % payload.get("scale"), ""]
        header, rows = _perf_rows(payload)
        out += _md_table(header, rows)
        agg = payload.get("aggregate", {})
        out.append("")
        out.append(
            "Aggregate: **%sx** (%s)."
            % (_fmt_num(agg.get("speedup")), _perf_aggregate_text(agg))
        )

    sparks = _trajectory_sparks(report)
    if sparks:
        out += ["", "## Perf trajectory (%d points)" % len(report.trajectory), ""]
        for label, line, latest in sparks:
            out.append("- `%s` %s (latest %s)" % (line, label, latest))
        out.append("")
        header, rows = _trajectory_rows(report)
        out += _md_table(header, rows)

    for summary in report.timelines:
        out += ["", "## Timeline", ""]
        out += ["- %s" % line for line in _timeline_lines(summary)]

    for snapshot in report.telemetry:
        out += [
            "",
            "## Service telemetry (uptime %ss, peak %d in flight)"
            % (_fmt_num(snapshot.get("uptime_s")), snapshot.get("in_flight_peak", 0)),
            "",
        ]
        header, rows = _telemetry_rows(snapshot)
        out += _md_table(header, rows)
        if snapshot.get("rejections"):
            out.append("")
            out.append(
                "Rejections: "
                + ", ".join(
                    "%s ×%d" % (code, n)
                    for code, n in sorted(snapshot["rejections"].items())
                )
            )
        if snapshot.get("cache"):
            out += ["", "### Served cache effectiveness", ""]
            header, rows = _cache_rows(snapshot["cache"])
            out += _md_table(header, rows)

    out.append("")
    return "\n".join(out)


# ---------------------------------------------------------------------------
# HTML renderer (single file, stdlib only)

_CSS = """
body { font-family: -apple-system, 'Segoe UI', Roboto, sans-serif;
       margin: 2rem auto; max-width: 60rem; color: #1a1a2e; }
h1 { border-bottom: 2px solid #4a4e69; padding-bottom: .3rem; }
h2 { color: #4a4e69; margin-top: 2rem; }
table { border-collapse: collapse; margin: .5rem 0; }
th, td { border: 1px solid #c9cbd8; padding: .25rem .6rem; text-align: right; }
th:first-child, td:first-child { text-align: left; }
th { background: #f2f2f7; }
.spark { font-family: monospace; font-size: 1.1rem; color: #3a6ea5; }
.meta { color: #666; font-size: .9rem; }
.ok { color: #2a7f3f; } .bad { color: #b3261e; }
""".strip()


def _html_table(header, rows):
    if not rows:
        return "<p class=\"meta\">(no data)</p>"
    head = "".join("<th>%s</th>" % _html.escape(str(h)) for h in header)
    body = "".join(
        "<tr>%s</tr>"
        % "".join("<td>%s</td>" % _html.escape(str(cell)) for cell in row)
        for row in rows
    )
    return "<table><thead><tr>%s</tr></thead><tbody>%s</tbody></table>" % (head, body)


def render_html(report):
    """The whole report as one self-contained HTML page."""
    esc = _html.escape
    parts = [
        "<!DOCTYPE html>",
        "<html lang=\"en\"><head><meta charset=\"utf-8\">",
        "<title>%s</title>" % esc(report.title),
        "<style>%s</style>" % _CSS,
        "</head><body>",
        "<h1>%s</h1>" % esc(report.title),
    ]
    consumed = [s for s in report.sources if s["kind"] != "skipped"]
    parts.append(
        "<p class=\"meta\">Aggregated from %d file(s): %s</p>"
        % (len(consumed), esc(", ".join(s["file"] for s in consumed) or "none"))
    )

    if report.runs:
        parts.append("<h2>Per-kernel speedups</h2>")
        parts.append(_html_table(*_speedup_rows(report)))
        parts.append(
            "<p class=\"meta\">Cells are cycles (speedup vs serial).</p>"
        )
        header, rows = _stall_rows(report)
        if rows:
            parts.append("<h2>Cycle breakdown (Fig. 10 buckets)</h2>")
            parts.append(_html_table(header, rows))
        cache = report.cache_summary()
        if cache:
            parts.append("<h2>Cache effectiveness</h2>")
            parts.append(_html_table(*_cache_rows(cache)))

    if report.lint:
        rollup = report.lint_rollup()
        status = (
            "<span class=\"ok\">clean</span>"
            if not rollup["errors"] and not rollup["warnings"]
            else "<span class=\"bad\">%d error(s), %d warning(s)</span>"
            % (rollup["errors"], rollup["warnings"])
        )
        parts.append("<h2>Lint status</h2>")
        parts.append(
            "<p>%d target(s): %s</p>" % (rollup["targets"], status)
        )

    for payload in report.perf:
        parts.append(
            "<h2>Simulator performance (%s scale)</h2>" % esc(str(payload.get("scale")))
        )
        parts.append(_html_table(*_perf_rows(payload)))
        agg = payload.get("aggregate", {})
        parts.append(
            "<p>Aggregate <strong>%sx</strong> (%s).</p>"
            % (esc(_fmt_num(agg.get("speedup"))), esc(_perf_aggregate_text(agg)))
        )

    sparks = _trajectory_sparks(report)
    if sparks:
        parts.append("<h2>Perf trajectory (%d points)</h2>" % len(report.trajectory))
        parts.append("<ul>")
        for label, line, latest in sparks:
            parts.append(
                "<li><span class=\"spark\">%s</span> %s (latest %s)</li>"
                % (esc(line), esc(label), esc(latest))
            )
        parts.append("</ul>")
        parts.append(_html_table(*_trajectory_rows(report)))

    for summary in report.timelines:
        parts.append("<h2>Timeline</h2><ul>")
        parts += ["<li>%s</li>" % esc(line) for line in _timeline_lines(summary)]
        parts.append("</ul>")

    for snapshot in report.telemetry:
        parts.append(
            "<h2>Service telemetry (uptime %ss, peak %d in flight)</h2>"
            % (esc(_fmt_num(snapshot.get("uptime_s"))), snapshot.get("in_flight_peak", 0))
        )
        parts.append(_html_table(*_telemetry_rows(snapshot)))
        if snapshot.get("cache"):
            parts.append("<h3>Served cache effectiveness</h3>")
            parts.append(_html_table(*_cache_rows(snapshot["cache"])))

    parts.append("</body></html>")
    return "\n".join(parts)
