"""Cross-process cache behavior: one miss + one hit, never a corrupt store.

Two forked children race for the same cache key over one shared
``REPRO_CACHE_DIR``. The per-key ``flock`` in :mod:`repro.cache` must make
exactly one of them compute (the miss) while the other blocks and loads
the winner's entry (the hit); the write-then-rename store must leave a
pickle any later process can read.
"""

import json
import multiprocessing
import os
import pickle
import time

import pytest

from repro import cache
from repro.core import CompileOptions, pipeline_summary
from repro.frontend import compile_source

FORK = "fork" in multiprocessing.get_all_start_methods()
pytestmark = pytest.mark.skipif(not FORK, reason="needs fork start method")

KERNEL = """
#pragma phloem
void k(const int* restrict a, const int* restrict b, int* restrict out, int n) {
  for (int i = 0; i < n; i++) {
    int v = a[i];
    out[i] = b[v];
  }
}
"""


def _run_children(*targets):
    ctx = multiprocessing.get_context("fork")
    procs = [ctx.Process(target=target) for target in targets]
    for proc in procs:
        proc.start()
    for proc in procs:
        proc.join(60)
        assert proc.exitcode == 0, "child failed (exitcode %r)" % proc.exitcode


def test_simultaneous_compiles_share_one_miss(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "shared"))
    monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
    function = compile_source(KERNEL)
    options = CompileOptions()
    barrier = multiprocessing.get_context("fork").Barrier(2)
    out_dir = tmp_path / "out"
    out_dir.mkdir()

    def child(idx):
        def run():
            cache.reset()  # drop state inherited over fork; fresh counters
            barrier.wait()
            pipeline = cache.cached_compile(function, options)
            (out_dir / ("%d.json" % idx)).write_text(
                json.dumps(
                    {
                        "stats": cache.stats()["pipeline"],
                        "summary": pipeline_summary(pipeline),
                    }
                )
            )

        return run

    _run_children(child(0), child(1))
    results = [json.loads((out_dir / ("%d.json" % i)).read_text()) for i in range(2)]
    hits = sum(r["stats"]["hits"] for r in results)
    misses = sum(r["stats"]["misses"] for r in results)
    assert misses == 1, "exactly one child computes: %r" % results
    assert hits == 1, "the other takes the winner's entry: %r" % results
    assert results[0]["summary"] == results[1]["summary"]

    # The store entry is a clean pickle, and a fresh process-like state
    # (cold memory layer) hits it too.
    (entry,) = [
        os.path.join(root, name)
        for root, _, names in os.walk(tmp_path / "shared" / "pipeline")
        for name in names
        if name.endswith(".pkl")
    ]
    with open(entry, "rb") as handle:
        pickle.load(handle)
    cache.reset()
    cache.cached_compile(function, options)
    assert cache.stats()["pipeline"] == {"hits": 1, "misses": 0}


def test_key_lock_serializes_overlapping_computes(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "shared"))
    monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
    marker = tmp_path / "computes.log"
    barrier = multiprocessing.get_context("fork").Barrier(2)

    def child():
        cache.reset()
        barrier.wait()

        def compute():
            # Record the invocation, then dawdle while holding the key
            # lock so the race partner is provably blocked, not just late.
            with open(marker, "a") as handle:
                handle.write("x")
            time.sleep(0.3)
            return {"value": 42}

        value = cache.cached_search(("concurrency-test", str(tmp_path)), compute)
        assert value == {"value": 42}

    _run_children(child, child)
    assert marker.read_text() == "x", "compute must run exactly once across the race"
