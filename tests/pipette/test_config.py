"""Table III parity: the evaluation configuration matches the paper."""

from repro.pipette.config import PIPETTE_1CORE, PIPETTE_4CORE, SCALED_1CORE, MachineConfig


def test_core_parameters():
    cfg = PIPETTE_1CORE
    assert cfg.cores == 1
    assert cfg.smt_threads == 4  # "scaled to four SMT threads"
    assert cfg.issue_width == 6  # "6-wide out-of-order issue"
    assert cfg.freq_ghz == 3.5


def test_pipette_parameters():
    cfg = PIPETTE_1CORE
    assert cfg.max_queues == 16  # "16 queues max"
    assert cfg.max_ras == 4  # "4 RAs"
    assert cfg.queue_capacity == 24  # "queues up to 24 elements deep"


def test_cache_hierarchy():
    cfg = PIPETTE_1CORE
    assert (cfg.l1.size, cfg.l1.ways, cfg.l1.latency) == (32 * 1024, 8, 4)
    assert (cfg.l2.size, cfg.l2.ways, cfg.l2.latency) == (256 * 1024, 8, 12)
    assert (cfg.l3_per_core.size, cfg.l3_per_core.ways, cfg.l3_per_core.latency) == (
        2 * 1024 * 1024,
        16,
        40,
    )
    assert cfg.dram_latency == 120  # "120-cycle minimum latency"
    assert cfg.dram_controllers == 2  # "2 controllers"


def test_l3_scales_with_cores():
    assert PIPETTE_4CORE.l3.size == 4 * PIPETTE_1CORE.l3.size
    assert PIPETTE_4CORE.total_threads == 16


def test_cache_sets():
    cfg = PIPETTE_1CORE
    assert cfg.l1.sets == 32 * 1024 // (64 * 8)


def test_with_cores():
    scaled = PIPETTE_1CORE.with_cores(4)
    assert scaled.cores == 4
    assert scaled.l1.size == PIPETTE_1CORE.l1.size


def test_op_latency_defaults():
    cfg = MachineConfig()
    assert cfg.op_latency("add") == 1
    assert cfg.op_latency("mul") == 3
    assert cfg.op_latency("div") == 12


def test_scaled_config_keeps_latencies():
    assert SCALED_1CORE.l1.latency == PIPETTE_1CORE.l1.latency
    assert SCALED_1CORE.l3.latency == PIPETTE_1CORE.l3.latency
    assert SCALED_1CORE.l3.size < PIPETTE_1CORE.l3.size
