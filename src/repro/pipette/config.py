"""Machine configuration (paper Table III).

The defaults reproduce the paper's evaluation configuration: Skylake-like
6-wide OOO cores with 4-thread SMT at 3.5 GHz, Pipette's 16 queues (24
entries deep) and 4 reference accelerators per core, and a three-level cache
hierarchy over bandwidth-limited DRAM.
"""

from dataclasses import dataclass, field, replace


def _default_op_latencies():
    # Completion latencies (cycles) for register-to-register operations.
    return {
        "mul": 3,
        "div": 12,
        "mod": 12,
        "select": 1,
    }


@dataclass(frozen=True)
class CacheConfig:
    """One cache level: size in bytes, associativity, access latency."""

    size: int
    ways: int
    latency: int
    line: int = 64

    @property
    def sets(self):
        return max(1, self.size // (self.line * self.ways))


@dataclass(frozen=True)
class MachineConfig:
    """Full system configuration; see Table III of the paper."""

    # Cores.
    cores: int = 1
    smt_threads: int = 4
    issue_width: int = 6
    rob_size: int = 224
    mshrs: int = 10
    mispredict_penalty: int = 14
    freq_ghz: float = 3.5

    # Pipette.
    max_queues: int = 16
    max_ras: int = 4
    queue_capacity: int = 24
    queue_latency: int = 2  # producer->consumer, same core (via the PRF)
    xcore_queue_latency: int = 16  # producer->consumer across cores
    ra_mshrs: int = 16  # parallel loads an RA keeps in flight (in-order delivery)

    # Memory hierarchy (per-core L1/L2; L3 is shared and scales with cores).
    l1: CacheConfig = field(default_factory=lambda: CacheConfig(32 * 1024, 8, 4))
    l2: CacheConfig = field(default_factory=lambda: CacheConfig(256 * 1024, 8, 12))
    l3_per_core: CacheConfig = field(default_factory=lambda: CacheConfig(2 * 1024 * 1024, 16, 40))
    dram_latency: int = 120
    dram_controllers: int = 2
    # 64B line / 25 GB/s at 3.5 GHz ~= 9 cycles of service per controller.
    dram_service: int = 9

    # Stride prefetcher (serial baselines lean on this for streaming scans).
    prefetch_enabled: bool = True
    prefetch_degree: int = 4

    # Per-op completion latencies; everything absent defaults to 1 cycle.
    op_latencies: dict = field(default_factory=_default_op_latencies)

    def with_cores(self, cores):
        """A copy of this config scaled to ``cores`` cores (Fig. 14 setup)."""
        return replace(self, cores=cores)

    @property
    def total_threads(self):
        return self.cores * self.smt_threads

    @property
    def l3(self):
        """The shared LLC: per-core slice scaled by core count."""
        per = self.l3_per_core
        return CacheConfig(per.size * self.cores, per.ways, per.latency, per.line)

    def op_latency(self, op):
        return self.op_latencies.get(op, 1)


#: The paper's single-core evaluation configuration.
PIPETTE_1CORE = MachineConfig()

#: The paper's replication configuration (Sec. VII-B): 4 cores x 4 threads.
PIPETTE_4CORE = MachineConfig(cores=4)


def _scaled(cores=1):
    """The *scaled* evaluation configuration used by the benchmark harness.

    The paper simulates inputs hundreds of times larger than a pure-Python
    simulator can carry, so the harness shrinks the workloads and, with
    them, the capacity-sensitive cache levels — keeping L1/L2 large enough
    for the queue-depth-scale reuse window that decoupled prefetching
    relies on, while making the scaled working sets exceed the LLC the way
    the paper's full-size inputs exceed its 2 MB/core L3. Latencies are
    unchanged (Table III).
    """
    return MachineConfig(
        cores=cores,
        l1=CacheConfig(16 * 1024, 8, 4),
        l2=CacheConfig(32 * 1024, 8, 12),
        l3_per_core=CacheConfig(64 * 1024, 16, 40),
    )


#: Scaled configs used by `repro.bench` (see DESIGN.md, substitutions).
SCALED_1CORE = _scaled(1)
SCALED_4CORE = _scaled(4)
