"""Static pipeline-safety analyzer (the ``repro lint`` pass suite).

Runs on a decoupled :class:`~repro.ir.PipelineProgram` — after every
compiler transform in ``--verify-each`` mode and once before execution —
and turns the runtime's failure modes into compile-time diagnostics
(:mod:`repro.diag` codes):

**Token balance (PHL10x).** Abstract interpretation over each stage's
region tree computes, per queue, how many data tokens and control values
the stage enqueues/dequeues: an exact count when control flow allows it,
``TOP`` (unknown) otherwise. Counted loops with constant bounds multiply
their body's effect; ``if`` joins require both arms to agree or the count
degrades to ``TOP`` (and, when the peer's count is exact, yields a
conditional-imbalance warning). Producers are resolved *through* reference
accelerators: an INDIRECT RA forwards one output token per input token, so
balance flows across it, while a SCAN RA's output multiplicity is data
dependent and blocks exact matching. Sentinel analysis checks that every
control-terminated consumer loop (or installed handler) has a producer
that actually sends a control value.

**Deadlock (PHL20x).** The stage/queue topology graph is checked for
cycles (Tarjan SCCs). Every cycle gets a warning; a cycle is escalated to
a *capacity-infeasible* error when some member stage can enqueue more
tokens into the cycle than the cycle's total queue depth before it
dequeues anything from it (a credit-based sufficiency check against the
``pipette.config`` depths). A fan-in ordering check catches the bounded-
queue deadlock where a producer fills one queue completely before feeding
the queue its consumer is blocked on.

**Cross-stage races (PHL30x).** Restrict-aware use/def analysis (reusing
:mod:`repro.analysis.alias`) classifies every array accessed by two or
more stages as read-only, single-writer, or conflicting: write-write pairs
and loads of a written class from another stage are exactly the paper's
Fig. 4 race and are hard errors (prefetches are allowed — that is the
paper's resolution). Shared scalar cells crossing stages without a
barrier, and non-commutative reductions under ``#pragma phloem
replicate``, round out the lint.

Findings carry the source span of the offending statement when the
frontend lowered it (compiler-synthesized statements fall back to a
``stage``/``queue`` context string).
"""

from __future__ import annotations

from typing import Any, Iterable, Optional

from ..diag import DiagnosticSet
from ..ir.stmts import walk
from .alias import AliasInfo, access_class

#: Unknown multiplicity in the token-count abstract domain.
TOP = "?"

#: Token counts are ``int`` or :data:`TOP` — an untagged union the abstract
#: arithmetic helpers below normalize, so the alias is deliberately loose.
Count = Any

#: Binary ops that are NOT commutative reductions: accumulating with one of
#: these under replication makes the result depend on arrival order.
NON_COMMUTATIVE = frozenset(["sub", "div", "mod", "shl", "shr"])

#: Cross-stage classification verdicts (see :func:`classify_cross_stage`).
READ_ONLY = "read-only"
SINGLE_WRITER = "single-writer"
CONFLICTING = "conflicting"


# ---------------------------------------------------------------------------
# Token-count abstract domain


def _c_add(a: Count, b: Count) -> Count:
    return TOP if (a is TOP or b is TOP) else a + b


def _c_mul(a: Count, b: Count) -> Count:
    if a == 0 or b == 0:
        return 0
    return TOP if (a is TOP or b is TOP) else a * b


def _c_fmt(c: Count) -> str:
    return "?" if c is TOP else str(c)


class _QEffect:
    """Per-queue token effect of a region: enq/ctrl/deq/peek counts."""

    __slots__ = ("enq", "ctrl", "deq", "peek")

    def __init__(self, enq: Count = 0, ctrl: Count = 0, deq: Count = 0, peek: Count = 0) -> None:
        self.enq = enq
        self.ctrl = ctrl
        self.deq = deq
        self.peek = peek

    FIELDS = ("enq", "ctrl", "deq", "peek")


class _Imbalance:
    """A branch whose arms disagree on a queue effect (candidate PHL104)."""

    __slots__ = ("qid", "field", "stmt", "then_count", "else_count")

    def __init__(self, qid: Any, field: str, stmt: Any, then_count: Count, else_count: Count) -> None:
        self.qid = qid
        self.field = field
        self.stmt = stmt
        self.then_count = then_count
        self.else_count = else_count


def _escapes(body: Any, depth: int = 0) -> bool:
    """True if ``body`` can break/continue out of the loop enclosing it."""
    for stmt in body:
        if stmt.kind == "break" and stmt.levels > depth:
            return True
        if stmt.kind == "continue" and depth == 0:
            return True
        extra = 1 if stmt.kind in ("for", "loop") else 0
        for block in stmt.blocks():
            if _escapes(block, depth + extra):
                return True
    return False


def _trip_count(stmt: Any) -> Count:
    """Exact trip count of a counted loop, or TOP."""
    if stmt.kind != "for":
        return TOP
    lo, hi, step = stmt.lo, stmt.hi, stmt.step
    if isinstance(lo, (int, float)) and isinstance(hi, (int, float)) and isinstance(step, (int, float)) and step > 0:
        trips = int(max(0, (hi - lo + step - 1) // step))
        return trips
    return TOP


def body_effects(body: Any, imbalances: Optional[list[_Imbalance]] = None) -> dict[Any, _QEffect]:
    """Abstractly interpret ``body``; returns ``{qid: _QEffect}``.

    ``imbalances`` (a list) collects branch arms that disagree on a queue
    effect; the caller decides which of those are worth a diagnostic.
    """
    if imbalances is None:
        imbalances = []
    eff: dict[Any, _QEffect] = {}

    def bump(qid: Any, field: str, count: Count) -> None:
        qe = eff.setdefault(qid, _QEffect())
        setattr(qe, field, _c_add(getattr(qe, field), count))

    for stmt in body:
        kind = stmt.kind
        if kind in ("enq", "enq_dist"):
            # Enqueueing the %ctrl register is how a handler forwards a
            # control value downstream: count it as a control send, not data.
            if stmt.value == "%ctrl":
                bump(stmt.queue, "ctrl", 1)
            else:
                bump(stmt.queue, "enq", 1)
        elif kind in ("enq_ctrl", "enq_ctrl_dist"):
            bump(stmt.queue, "ctrl", 1)
        elif kind == "deq":
            bump(stmt.queue, "deq", 1)
        elif kind == "peek":
            bump(stmt.queue, "peek", 1)
        elif kind == "if":
            then_eff = body_effects(stmt.then_body, imbalances)
            else_eff = body_effects(stmt.else_body, imbalances)
            for qid in set(then_eff) | set(else_eff):
                t = then_eff.get(qid, _QEffect())
                e = else_eff.get(qid, _QEffect())
                for field in _QEffect.FIELDS:
                    tc, ec = getattr(t, field), getattr(e, field)
                    if tc == ec:
                        bump(qid, field, tc)
                    else:
                        imbalances.append(_Imbalance(qid, field, stmt, tc, ec))
                        bump(qid, field, TOP)
        elif kind in ("for", "loop"):
            inner = body_effects(stmt.body, imbalances)
            if inner:
                trip = _trip_count(stmt)
                if _escapes(stmt.body):
                    # The loop may exit early: any multiplicity is possible
                    # between 0 and trip, so exact counts do not survive.
                    trip = TOP
                for qid, qe in inner.items():
                    for field in _QEffect.FIELDS:
                        count = getattr(qe, field)
                        if count != 0:
                            bump(qid, field, _c_mul(trip, count))
    return eff


def stage_effects(stage: Any) -> tuple[dict[Any, _QEffect], list[_Imbalance]]:
    """Token effects of a whole stage (body + handlers), with imbalances."""
    imbalances: list[_Imbalance] = []
    eff = body_effects(stage.body, imbalances)
    for handler in stage.handlers.values():
        # A handler runs an unknown number of times (once per control value
        # delivered): its queue effects are TOP-scaled.
        heff = body_effects(handler, imbalances)
        for qid, qe in heff.items():
            tgt = eff.setdefault(qid, _QEffect())
            for field in _QEffect.FIELDS:
                count = getattr(qe, field)
                if count != 0:
                    setattr(tgt, field, TOP)
    return eff, imbalances


# ---------------------------------------------------------------------------
# Topology helpers


def _stage_by_index(pipeline: Any, index: Any) -> Optional[Any]:
    for stage in pipeline.stages:
        if stage.index == index:
            return stage
    return None


def _ra_by_id(pipeline: Any, raid: Any) -> Optional[Any]:
    for ra in pipeline.ras:
        if ra.raid == raid:
            return ra
    return None


def resolve_stage_producer(pipeline: Any, qid: Any) -> tuple[Any, Any, bool, bool]:
    """Resolve ``qid``'s producing *stage*, walking back through RA chains.

    Returns ``(stage, origin_qid, ctrl_forwarded, exact_multiplicity)``:
    ``stage`` is None for extern/unresolvable producers; ``ctrl_forwarded``
    is False if some RA in the chain drops control values;
    ``exact_multiplicity`` is False if a SCAN RA (data-dependent output
    count) sits between the stage and the queue.
    """
    ctrl_ok = True
    exact = True
    seen = set()
    while True:
        spec = pipeline.queues.get(qid)
        if spec is None or qid in seen:
            return None, qid, ctrl_ok, exact
        seen.add(qid)
        kind, idx = spec.producer
        if kind == "stage":
            return _stage_by_index(pipeline, idx), qid, ctrl_ok, exact
        if kind == "ra":
            ra = _ra_by_id(pipeline, idx)
            if ra is None:
                return None, qid, ctrl_ok, exact
            if not ra.forward_ctrl:
                ctrl_ok = False
            if ra.mode == "scan":
                exact = False
            qid = ra.in_queue
            continue
        return None, qid, ctrl_ok, exact  # extern


def _first_span(stmts_iter: Iterable[Any]) -> Optional[Any]:
    for stmt in stmts_iter:
        if stmt.span is not None:
            return stmt.span
    return None


def _queue_stmts(stage: Any, qid: Any, kinds: tuple[str, ...]) -> list[Any]:
    return [
        s
        for s in stage.all_stmts()
        if s.kind in kinds and getattr(s, "queue", None) == qid
    ]


def _stage_label(stage: Any) -> str:
    return "stage %d (%s)" % (stage.index, stage.name)


# ---------------------------------------------------------------------------
# Token-balance analysis (PHL101-PHL105)


def check_token_balance(pipeline: Any, diags: DiagnosticSet) -> None:
    """Prove per-queue enqueue/dequeue balance, or report why not."""
    effects: dict[Any, dict[Any, _QEffect]] = {}
    imbalances: dict[Any, list[_Imbalance]] = {}
    for stage in pipeline.stages:
        effects[stage.index], imbalances[stage.index] = stage_effects(stage)

    for qid in pipeline.queue_ids():
        spec = pipeline.queues[qid]
        pkind, pidx = spec.producer
        ckind, cidx = spec.consumer
        if pkind == "extern" or ckind == "extern":
            continue  # replicated remote endpoints: balance is global

        # -- consumption: the declared consumer must actually drain ------
        if ckind == "stage":
            consumer = _stage_by_index(pipeline, cidx)
            if consumer is None:
                continue  # dangling endpoint: verify_pipeline's problem
            ceff = effects[consumer.index].get(qid, _QEffect())
            drains = ceff.deq != 0 or ceff.peek != 0 or qid in consumer.handlers
            if not drains:
                span = None
                if pkind == "stage":
                    producer = _stage_by_index(pipeline, pidx)
                    if producer is not None:
                        span = _first_span(
                            _queue_stmts(producer, qid, ("enq", "enq_dist", "enq_ctrl"))
                        )
                diags.add(
                    "PHL101",
                    "queue %d%s is produced but %s never dequeues it: "
                    "tokens accumulate until the producer blocks forever"
                    % (qid, _qlabel(spec), _stage_label(consumer)),
                    span=span,
                    where=_stage_label(consumer),
                )
                continue

        # -- production: the declared producer must actually feed it -----
        if pkind == "stage":
            producer = _stage_by_index(pipeline, pidx)
            if producer is None:
                continue  # dangling endpoint: verify_pipeline's problem
            peff = effects[producer.index].get(qid, _QEffect())
            if peff.enq == 0 and peff.ctrl == 0:
                diags.add(
                    "PHL102",
                    "queue %d%s is consumed but %s never enqueues to it: "
                    "the consumer starves" % (qid, _qlabel(spec), _stage_label(producer)),
                    where=_stage_label(producer),
                )
                continue

        if ckind != "stage":
            continue  # RA-consumed queues drain by construction

        # -- sentinel/termination tokens ---------------------------------
        consumer = _stage_by_index(pipeline, cidx)
        origin, _oqid, ctrl_ok, exact = resolve_stage_producer(pipeline, qid)
        if _consumes_ctrl(consumer, qid):
            origin_ctrl: Count = 0
            if origin is not None:
                origin_ctrl = effects[origin.index].get(_oqid, _QEffect()).ctrl
            if not ctrl_ok:
                diags.add(
                    "PHL103",
                    "queue %d%s: %s terminates on control values but an RA in "
                    "the chain drops them (forward_ctrl=False)"
                    % (qid, _qlabel(spec), _stage_label(consumer)),
                    where=_stage_label(consumer),
                )
            elif origin is not None and origin_ctrl == 0:
                span = _first_span(_queue_stmts(consumer, qid, ("deq", "peek")))
                diags.add(
                    "PHL103",
                    "queue %d%s: %s waits for a control value that %s never "
                    "sends (missing sentinel: the consumer loop cannot "
                    "terminate)"
                    % (
                        qid,
                        _qlabel(spec),
                        _stage_label(consumer),
                        _stage_label(origin),
                    ),
                    span=span,
                    where=_stage_label(consumer),
                )

        # -- multiplicity matching ---------------------------------------
        if origin is None or not exact:
            continue
        peff = effects[origin.index].get(_oqid, _QEffect())
        ceff = effects[consumer.index].get(qid, _QEffect())
        produced, consumed = peff.enq, ceff.deq
        if produced is not TOP and consumed is not TOP and produced != consumed:
            span = _first_span(
                _queue_stmts(origin, _oqid, ("enq", "enq_dist"))
                + _queue_stmts(consumer, qid, ("deq",))
            )
            diags.add(
                "PHL105",
                "queue %d%s: %s enqueues %s token(s) per run but %s dequeues "
                "%s — the pipeline %s"
                % (
                    qid,
                    _qlabel(spec),
                    _stage_label(origin),
                    _c_fmt(produced),
                    _stage_label(consumer),
                    _c_fmt(consumed),
                    "deadlocks" if _c_lt(produced, consumed) else "leaks tokens",
                ),
                span=span,
                where="queue %d" % qid,
            )
        elif produced is TOP and consumed is TOP:
            _match_loop_rates(pipeline, origin, _oqid, consumer, qid, diags)

        # -- conditional imbalance (warnings) ----------------------------
        if origin is not None and consumed is not TOP and consumed != 0:
            for imb in imbalances[origin.index]:
                if imb.qid == _oqid and imb.field == "enq":
                    diags.add(
                        "PHL104",
                        "queue %d%s: %s enqueues %s token(s) on one branch "
                        "but %s on the other, while %s dequeues exactly %s — "
                        "token balance depends on the branch taken"
                        % (
                            qid,
                            _qlabel(spec),
                            _stage_label(origin),
                            _c_fmt(imb.then_count),
                            _c_fmt(imb.else_count),
                            _stage_label(consumer),
                            _c_fmt(consumed),
                        ),
                        span=imb.stmt.span,
                        where=_stage_label(origin),
                    )


def _qlabel(spec: Any) -> str:
    return " (%s)" % spec.label if spec.label else ""


def _c_lt(a: Count, b: Count) -> bool:
    return a is not TOP and b is not TOP and bool(a < b)


def _consumes_ctrl(stage: Any, qid: Any) -> bool:
    """Does ``stage`` terminate its consumption of ``qid`` on a control value?"""
    if qid in stage.handlers:
        return True
    deq_dsts = {s.dst for s in stage.all_stmts() if s.kind in ("deq", "peek") and s.queue == qid}
    return any(
        s.kind == "is_control" and s.src in deq_dsts for s in stage.all_stmts()
    )


def _loop_chain(body: Any, target: Any, chain: tuple[Any, ...] = ()) -> Optional[tuple[Any, ...]]:
    """Loop statements enclosing ``target``, outermost first, or None."""
    for stmt in body:
        if stmt is target:
            return chain
        for block in stmt.blocks():
            ext = chain + (stmt,) if stmt.kind in ("for", "loop") else chain
            found = _loop_chain(block, target, ext)
            if found is not None:
                return found
    return None


def _match_loop_rates(
    pipeline: Any, producer: Any, pqid: Any, consumer: Any, cqid: Any, diags: DiagnosticSet
) -> None:
    """Refine TOP-vs-TOP multiplicity: same counted loop, different rates.

    When every enqueue sits in one counted loop and every dequeue sits in a
    counted loop with *syntactically identical* bounds, the trip counts
    cancel and the per-iteration rates must match.
    """
    enqs = _queue_stmts(producer, pqid, ("enq", "enq_dist"))
    deqs = _queue_stmts(consumer, cqid, ("deq",))
    if not enqs or not deqs:
        return
    p_loops = {id(_innermost_for(producer.body, s)): _innermost_for(producer.body, s) for s in enqs}
    c_loops = {id(_innermost_for(consumer.body, s)): _innermost_for(consumer.body, s) for s in deqs}
    if len(p_loops) != 1 or len(c_loops) != 1:
        return
    p_loop = next(iter(p_loops.values()))
    c_loop = next(iter(c_loops.values()))
    if p_loop is None or c_loop is None:
        return
    if (p_loop.lo, p_loop.hi, p_loop.step) != (c_loop.lo, c_loop.hi, c_loop.step):
        return
    if _escapes(p_loop.body) or _escapes(c_loop.body):
        return
    p_rate = body_effects(p_loop.body).get(pqid, _QEffect()).enq
    c_rate = body_effects(c_loop.body).get(cqid, _QEffect()).deq
    if p_rate is TOP or c_rate is TOP or p_rate == c_rate:
        return
    diags.add(
        "PHL105",
        "queue %d: per iteration of the shared loop over [%s, %s), %s "
        "enqueues %s token(s) but %s dequeues %s — the pipeline %s"
        % (
            cqid,
            p_loop.lo,
            p_loop.hi,
            _stage_label(producer),
            _c_fmt(p_rate),
            _stage_label(consumer),
            _c_fmt(c_rate),
            "deadlocks" if _c_lt(p_rate, c_rate) else "leaks tokens",
        ),
        span=_first_span(enqs + deqs),
        where="queue %d" % cqid,
    )


def _innermost_for(body: Any, target: Any) -> Optional[Any]:
    """The innermost *counted* loop enclosing ``target``, or None."""
    chain = _loop_chain(body, target)
    if not chain:
        return None
    for loop in reversed(chain):
        if loop.kind == "for":
            return loop
    return None


# ---------------------------------------------------------------------------
# Deadlock analysis (PHL201-PHL203)


def stage_queue_graph(pipeline: Any) -> dict[Any, list[Any]]:
    """The dependency graph: endpoint node -> [(endpoint node, qid)]."""
    graph: dict[Any, list[Any]] = {}
    for stage in pipeline.stages:
        graph.setdefault(("stage", stage.index), [])
    for ra in pipeline.ras:
        graph.setdefault(("ra", ra.raid), [])
    for q in pipeline.queues.values():
        if q.producer[0] == "extern" or q.consumer[0] == "extern":
            continue
        graph.setdefault(q.producer, []).append((q.consumer, q.qid))
        graph.setdefault(q.consumer, [])
    return graph


def _sccs(graph: dict[Any, list[Any]]) -> list[list[Any]]:
    """Tarjan strongly-connected components, iteratively."""
    index: dict[Any, int] = {}
    lowlink: dict[Any, int] = {}
    on_stack: dict[Any, bool] = {}
    stack: list[Any] = []
    sccs: list[list[Any]] = []
    counter = [0]

    for root in graph:
        if root in index:
            continue
        work = [(root, iter(graph[root]))]
        index[root] = lowlink[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack[root] = True
        while work:
            node, it = work[-1]
            advanced = False
            for succ, _qid in it:
                if succ not in index:
                    index[succ] = lowlink[succ] = counter[0]
                    counter[0] += 1
                    stack.append(succ)
                    on_stack[succ] = True
                    work.append((succ, iter(graph[succ])))
                    advanced = True
                    break
                if on_stack.get(succ):
                    lowlink[node] = min(lowlink[node], index[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                comp = []
                while True:
                    member = stack.pop()
                    on_stack[member] = False
                    comp.append(member)
                    if member == node:
                        break
                sccs.append(comp)
    return sccs


def _node_label(pipeline: Any, node: Any) -> str:
    kind, idx = node
    if kind == "stage":
        stage = _stage_by_index(pipeline, idx)
        return _stage_label(stage) if stage is not None else "stage %d" % idx
    return "RA %d" % idx


def _c_max(a: Count, b: Count) -> Count:
    return TOP if (a is TOP or b is TOP) else max(a, b)


def _max_burst(body: Any, qout: Any, qin: Any) -> Count:
    """Max consecutive enqueues to ``qout`` without a dequeue of ``qin``.

    Abstract: a dequeue (or peek) of ``qin`` hands credit back to the
    cycle, resetting the run. Returns ``(pending, best)`` at each level:
    ``pending`` is the run still open at the end of the region, ``best``
    the longest run observed anywhere inside it.
    """

    def seq(body: Any, pending: Count) -> tuple[Count, Count]:
        best = pending
        for stmt in body:
            kind = stmt.kind
            if kind in ("enq", "enq_ctrl", "enq_dist", "enq_ctrl_dist") and stmt.queue == qout:
                pending = _c_add(pending, 1)
                best = _c_max(best, pending)
            elif kind in ("deq", "peek") and stmt.queue == qin:
                pending = 0
            elif kind == "if":
                t_pending, t_best = seq(stmt.then_body, pending)
                e_pending, e_best = seq(stmt.else_body, pending)
                pending = _c_max(t_pending, e_pending)
                best = _c_max(best, _c_max(t_best, e_best))
            elif kind in ("for", "loop"):
                iter_pending, iter_best = seq(stmt.body, 0)
                if iter_pending == 0 and iter_best == 0:
                    continue
                trip = TOP if _escapes(stmt.body) else _trip_count(stmt)
                has_reset = any(
                    s.kind in ("deq", "peek") and s.queue == qin for s in walk(stmt.body)
                )
                if has_reset:
                    # Each iteration hands credit back. The worst run spans
                    # the entry run plus one iteration head, or one
                    # iteration tail plus the next head; both are bounded
                    # by iter_best (+ pending / + iter_best).
                    best = _c_max(best, _c_add(pending, iter_best))
                    best = _c_max(best, _c_add(iter_best, iter_best))
                    # The loop may run zero times: the entry run can survive.
                    pending = _c_max(pending, iter_best)
                else:
                    # No credit returned inside: runs accumulate trip times.
                    pending = _c_add(pending, _c_mul(trip, iter_pending))
                    best = _c_max(best, pending)
        return pending, best

    pending, best = seq(body, 0)
    return _c_max(pending, best)


def check_deadlock(pipeline: Any, diags: DiagnosticSet) -> None:
    """Cycle + credit-based capacity feasibility over the topology graph."""
    graph = stage_queue_graph(pipeline)
    edges: dict[Any, list[Any]] = {}
    for src, succs in graph.items():
        for dst, qid in succs:
            edges.setdefault((src, dst), []).append(qid)

    for comp in _sccs(graph):
        comp_set = set(comp)
        cyc_queues = [
            qid
            for (src, dst), qids in edges.items()
            if src in comp_set and dst in comp_set
            for qid in qids
        ]
        is_cycle = len(comp) > 1 or any(
            src == dst for (src, dst) in edges if src in comp_set and dst in comp_set
        )
        if not is_cycle:
            continue
        chain = " -> ".join(sorted(_node_label(pipeline, n) for n in comp))
        diags.add(
            "PHL201",
            "stages form a queue cycle (%s via queue(s) %s): progress "
            "depends on queue credit, not just data availability"
            % (chain, ", ".join(str(q) for q in sorted(cyc_queues))),
            where="queues %s" % ",".join(str(q) for q in sorted(cyc_queues)),
        )
        credit = sum(pipeline.queues[qid].capacity for qid in cyc_queues)
        for node in comp:
            if node[0] != "stage":
                continue
            stage = _stage_by_index(pipeline, node[1])
            outs = [
                qid
                for (src, dst), qids in edges.items()
                if src == node and dst in comp_set
                for qid in qids
            ]
            ins = [
                qid
                for (src, dst), qids in edges.items()
                if dst == node and src in comp_set
                for qid in qids
            ]
            for qout in outs:
                for qin in ins:
                    burst = _max_burst(stage.body, qout, qin)
                    if burst is TOP or burst > credit:
                        diags.add(
                            "PHL202",
                            "%s can enqueue %s token(s) into queue %d before "
                            "dequeuing queue %d, but the cycle only buffers "
                            "%d: the cycle deadlocks once credit runs out"
                            % (
                                _stage_label(stage),
                                _c_fmt(burst),
                                qout,
                                qin,
                                credit,
                            ),
                            span=_first_span(_queue_stmts(stage, qout, ("enq", "enq_dist"))),
                            where=_stage_label(stage),
                        )

    _check_fanin_order(pipeline, diags)


def _walk_positions(body: Any) -> dict[int, int]:
    return {id(stmt): pos for pos, stmt in enumerate(walk(body))}


def _check_fanin_order(pipeline: Any, diags: DiagnosticSet) -> None:
    """PHL203: producer fills queue A completely before feeding queue B,
    while the consumer blocks on B before draining A."""
    pairs: dict[Any, list[Any]] = {}
    for q in pipeline.queues.values():
        if q.producer[0] == "stage" and q.consumer[0] == "stage":
            pairs.setdefault((q.producer[1], q.consumer[1]), []).append(q)
    for (pidx, cidx), qs in pairs.items():
        if len(qs) < 2:
            continue
        producer = _stage_by_index(pipeline, pidx)
        consumer = _stage_by_index(pipeline, cidx)
        if producer is None or consumer is None:
            continue
        ppos = _walk_positions(producer.body)
        cpos = _walk_positions(consumer.body)
        for qa in qs:
            for qb in qs:
                if qa.qid == qb.qid:
                    continue
                a_enqs = _queue_stmts(producer, qa.qid, ("enq", "enq_dist"))
                b_enqs = _queue_stmts(
                    producer, qb.qid, ("enq", "enq_dist", "enq_ctrl", "enq_ctrl_dist")
                )
                a_deqs = _queue_stmts(consumer, qa.qid, ("deq", "peek"))
                b_deqs = _queue_stmts(consumer, qb.qid, ("deq", "peek"))
                if not (a_enqs and b_enqs and a_deqs and b_deqs):
                    continue
                loop = _innermost_for(producer.body, a_enqs[0])
                if loop is None:
                    chain = _loop_chain(producer.body, a_enqs[0])
                    loop = chain[-1] if chain else None
                if loop is None:
                    continue
                in_loop = {id(s) for s in walk(loop.body)}
                if any(id(s) in in_loop for s in b_enqs):
                    continue  # interleaved: the consumer can make progress
                if not all(ppos[id(s)] > ppos[id(loop)] for s in b_enqs):
                    continue  # qb fed before the qa loop: consumer unblocks
                if min(cpos[id(s)] for s in b_deqs) > min(cpos[id(s)] for s in a_deqs):
                    continue  # consumer drains qa first: compatible order
                burst = body_effects([loop]).get(qa.qid, _QEffect()).enq
                if burst is not TOP and burst <= qa.capacity:
                    continue  # the queue absorbs the whole burst: feasible
                diags.add(
                    "PHL203",
                    "%s enqueues %s token(s) to queue %d before first feeding "
                    "queue %d, but %s blocks on queue %d first and queue %d "
                    "only holds %d: both sides stall once the queue fills"
                    % (
                        _stage_label(producer),
                        _c_fmt(burst),
                        qa.qid,
                        qb.qid,
                        _stage_label(consumer),
                        qb.qid,
                        qa.qid,
                        qa.capacity,
                    ),
                    span=_first_span(a_enqs),
                    where=_stage_label(producer),
                )


# ---------------------------------------------------------------------------
# Cross-stage race detection (PHL301-PHL304)


def _stage_access_sites(stage: Any) -> tuple[AliasInfo, dict[Any, list[Any]]]:
    """(alias info, load sites by class, write sites by class) for a stage."""
    info = AliasInfo(stage.body)
    for handler in stage.handlers.values():
        hinfo = AliasInfo(handler)
        for cls, sites in hinfo.reads.items():
            info.reads.setdefault(cls, []).extend(sites)
        for cls, sites in hinfo.writes.items():
            info.writes.setdefault(cls, []).extend(sites)
    loads = {}
    for cls, sites in info.reads.items():
        real_loads = [s for s in sites if s.kind == "load"]
        if real_loads:
            loads[cls] = real_loads
    return info, loads


def classify_cross_stage(pipeline: Any) -> dict[Any, str]:
    """Classify every alias class accessed by >= 2 stages.

    Returns ``{class: verdict}`` with verdicts ``read-only`` (no stage
    writes), ``single-writer`` (one stage writes, others at most prefetch),
    or ``conflicting`` (a racing access pattern the checks below flag).
    Restrict-qualified arrays are their own class (the pointer accessed
    through, per :mod:`repro.analysis.alias`); arrays *without* restrict
    share one may-alias class.
    """
    readers: dict[Any, set[Any]] = {}
    writers: dict[Any, set[Any]] = {}
    loaders: dict[Any, set[Any]] = {}
    for stage in pipeline.stages:
        info, loads = _stage_access_sites(stage)
        for cls in info.reads:
            readers.setdefault(_merged_class(pipeline, cls), set()).add(stage.index)
        for cls in loads:
            loaders.setdefault(_merged_class(pipeline, cls), set()).add(stage.index)
        for cls in info.writes:
            writers.setdefault(_merged_class(pipeline, cls), set()).add(stage.index)

    verdicts = {}
    for cls in set(readers) | set(writers):
        touching = readers.get(cls, set()) | writers.get(cls, set())
        if len(touching) < 2:
            continue
        wstages = writers.get(cls, set())
        if not wstages:
            verdicts[cls] = READ_ONLY
        elif len(wstages) == 1 and not (loaders.get(cls, set()) - wstages):
            verdicts[cls] = SINGLE_WRITER
        else:
            verdicts[cls] = CONFLICTING
    return verdicts


def _merged_class(pipeline: Any, cls: Any) -> Any:
    """Map a non-restrict array's class into the shared may-alias class."""
    if cls.startswith("@"):
        decl = pipeline.arrays.get(cls[1:])
        if decl is not None and not decl.restrict:
            return "<may-alias>"
    return cls


def check_races(pipeline: Any, diags: DiagnosticSet) -> None:
    """Flag write-write and unordered read-write pairs across stages."""
    write_sites: dict[Any, dict[Any, list[Any]]] = {}  # merged class -> {stage index -> [stmts]}
    load_sites: dict[Any, dict[Any, list[Any]]] = {}
    class_names: dict[Any, set[Any]] = {}  # merged class -> set of source-level class names
    for stage in pipeline.stages:
        info, loads = _stage_access_sites(stage)
        for cls, sites in info.writes.items():
            merged = _merged_class(pipeline, cls)
            write_sites.setdefault(merged, {}).setdefault(stage.index, []).extend(sites)
            class_names.setdefault(merged, set()).add(cls)
        for cls, sites in loads.items():
            merged = _merged_class(pipeline, cls)
            load_sites.setdefault(merged, {}).setdefault(stage.index, []).extend(sites)
            class_names.setdefault(merged, set()).add(cls)

    for cls, per_stage in sorted(write_sites.items()):
        names = " / ".join(sorted(class_names.get(cls, {cls})))
        wstages = sorted(per_stage)
        if len(wstages) >= 2:
            span = _first_span(
                s for idx in wstages for s in per_stage[idx]
            )
            diags.add(
                "PHL301",
                "array %s is written by stages %s: concurrent pipeline "
                "stages give no write ordering (write-write race)"
                % (names, ", ".join(str(i) for i in wstages)),
                span=span,
                where="array %s" % names,
            )
            continue
        writer = wstages[0]
        foreign_loads = {
            idx: sites for idx, sites in load_sites.get(cls, {}).items() if idx != writer
        }
        for idx, sites in sorted(foreign_loads.items()):
            stage = _stage_by_index(pipeline, idx)
            diags.add(
                "PHL302",
                "array %s is written by stage %d but loaded by %s: the load "
                "may observe stale data (the paper's Fig. 4 race — other "
                "stages may only prefetch a written array)"
                % (names, writer, _stage_label(stage)),
                span=_first_span(sites),
                where=_stage_label(stage),
            )

    _check_shared_cells(pipeline, diags)


def _check_shared_cells(pipeline: Any, diags: DiagnosticSet) -> None:
    """PHL304: shared scalar cells must cross stages only over a barrier."""
    writers: dict[Any, dict[Any, Any]] = {}
    readers: dict[Any, dict[Any, Any]] = {}
    has_barrier: dict[Any, bool] = {}
    for stage in pipeline.stages:
        has_barrier[stage.index] = any(s.kind == "barrier" for s in stage.all_stmts())
        for stmt in stage.all_stmts():
            if stmt.kind == "write_shared":
                writers.setdefault(stmt.var, {}).setdefault(stage.index, stmt)
            elif stmt.kind == "read_shared":
                readers.setdefault(stmt.var, {}).setdefault(stage.index, stmt)
    for var, wstages in sorted(writers.items()):
        for ridx, rstmt in sorted(readers.get(var, {}).items()):
            for widx, wstmt in sorted(wstages.items()):
                if widx == ridx:
                    continue
                if has_barrier.get(widx) and has_barrier.get(ridx):
                    continue  # phase protocol: coherent across the barrier
                diags.add(
                    "PHL304",
                    "shared cell %r is written by stage %d and read by stage "
                    "%d without a barrier between them: shared cells are "
                    "only coherent across a barrier" % (var, widx, ridx),
                    span=rstmt.span or wstmt.span,
                    where="shared %s" % var,
                )


# ---------------------------------------------------------------------------
# Replication commutativity lint (PHL303)


def check_commutativity(
    bodies: Iterable[tuple[str, Any]], diags: DiagnosticSet, where: Optional[str] = None
) -> None:
    """Lint read-modify-write reductions for commutativity.

    ``bodies`` is an iterable of (label, body). Under replication, an
    update ``a[i] = a[i] OP v`` executes in whatever order elements arrive
    at their owner replica; OP must be commutative+associative for the
    result to be order-independent. Atomic RMW ops are restricted to
    commutative ops by construction; this catches the load/op/store form.
    """
    for label, body in bodies:
        defs: dict[Any, list[Any]] = {}
        for stmt in walk(body):
            for reg in stmt.defs():
                defs.setdefault(reg, []).append(stmt)
        loaded_from = {}  # reg -> array class it was loaded from (single def)
        for reg, stmts_ in defs.items():
            if len(stmts_) == 1 and stmts_[0].kind == "load":
                loaded_from[reg] = access_class(stmts_[0].array)
        for stmt in walk(body):
            if stmt.kind != "store":
                continue
            value = stmt.value
            vdefs = defs.get(value, [])
            if len(vdefs) != 1 or vdefs[0].kind != "assign":
                continue
            op_stmt = vdefs[0]
            if op_stmt.op not in NON_COMMUTATIVE:
                continue
            cls = access_class(stmt.array)
            if any(loaded_from.get(arg) == cls for arg in op_stmt.args):
                diags.add(
                    "PHL303",
                    "replicated reduction on %s uses non-commutative op "
                    "'%s': replicas apply updates in arrival order, so the "
                    "result is schedule-dependent" % (cls, op_stmt.op),
                    span=stmt.span or op_stmt.span,
                    where=where or label,
                )


def check_replication(pipeline: Any, diags: DiagnosticSet) -> None:
    if not pipeline.meta.get("replicate"):
        return
    check_commutativity(
        ((_stage_label(s), s.body) for s in pipeline.stages), diags
    )


# ---------------------------------------------------------------------------
# Entry points


def sanitize_pipeline(pipeline: Any, diags: Optional[DiagnosticSet] = None) -> DiagnosticSet:
    """Run the full static safety suite on a pipeline.

    Returns a :class:`~repro.diag.DiagnosticSet`; callers decide whether
    errors abort (the compiler does) or are reported (the lint CLI does).
    """
    if diags is None:
        diags = DiagnosticSet()
    check_token_balance(pipeline, diags)
    check_deadlock(pipeline, diags)
    check_races(pipeline, diags)
    check_replication(pipeline, diags)
    return diags


def sanitize_function(function: Any, diags: Optional[DiagnosticSet] = None) -> DiagnosticSet:
    """Pre-pipeline lint of a serial Function (replication commutativity)."""
    if diags is None:
        diags = DiagnosticSet()
    if function.pragmas.get("replicate"):
        check_commutativity(
            [("func %s" % function.name, function.body)], diags
        )
    return diags


def lint_source(
    source: str,
    name: Optional[str] = None,
    options: Optional[Any] = None,
    file: Optional[str] = None,
    verify_each: bool = False,
    perf: bool = False,
) -> DiagnosticSet:
    """Lint mini-C source end to end; never raises on findings.

    Parses, lowers, compiles, and sanitizes, converting every toolchain
    failure (parse, lowering, verification, compile) into its wrapper
    diagnostic. ``perf`` additionally runs the static performance model
    (:mod:`repro.analysis.perfmodel`) over the compiled pipeline and
    appends its PHL4xx advisories. Returns a
    :class:`~repro.diag.DiagnosticSet`.
    """
    # Imported lazily: analysis modules must not depend on repro.core at
    # import time (core's passes import repro.analysis).
    from ..core.compiler import CompileOptions, compile_function
    from ..diag import from_exception
    from ..errors import CompileError, IRVerificationError, LoweringError, ParseError, SanitizeError
    from ..frontend.lowering import compile_source

    try:
        function = compile_source(source, name=name)
    except (ParseError, LoweringError, IRVerificationError) as exc:
        return from_exception(exc, file=file)

    diags = sanitize_function(function)
    options = options or CompileOptions()
    if verify_each:
        options = options.replace(verify_each=True)
    try:
        pipeline = compile_function(function, options=options)
    except SanitizeError as exc:
        return diags.extend(exc.diagnostics)
    except IRVerificationError as exc:
        return diags.extend(from_exception(exc, file=file))
    except CompileError as exc:
        return diags.extend(from_exception(exc, file=file))

    sanitize_pipeline(pipeline, diags)
    if perf:
        from .perfmodel import perf_advisories

        perf_advisories(pipeline, diags=diags)
    return diags
