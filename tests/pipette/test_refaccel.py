"""Reference accelerators: indirect, scan, chaining, control forwarding."""

from repro import ir
from repro.pipette import Machine, MachineConfig, RunSpec


def _pipe(stages, queues, ras, arrays):
    decls = {name: ir.ArrayDecl(name) for name in arrays}
    return ir.PipelineProgram("t", stages, queues, ras, decls, [])


def test_indirect_ra():
    b0 = ir.IRBuilder()
    for idx in (2, 0, 1):
        b0.enq(0, idx)
    s0 = ir.StageProgram(0, "p", b0.finish())
    b1 = ir.IRBuilder()
    with b1.for_("i", 0, 3):
        v = b1.deq(1)
        b1.store("@out", "i", v)
    s1 = ir.StageProgram(1, "c", b1.finish())
    pipe = _pipe(
        [s0, s1],
        [ir.QueueSpec(0, ("stage", 0), ("ra", 0)), ir.QueueSpec(1, ("ra", 0), ("stage", 1))],
        [ir.RASpec(0, ir.RA_INDIRECT, "@a", 0, 1)],
        {"a": None, "out": None},
    )
    res = Machine(MachineConfig()).run(
        RunSpec(pipe, {"a": [10, 11, 12], "out": [0, 0, 0]}, {})
    )
    assert res.arrays()["out"] == [12, 10, 11]
    assert res.stats.ra_loads == 3


def test_scan_ra():
    b0 = ir.IRBuilder()
    b0.enq(0, 1)
    b0.enq(0, 4)  # scan [1, 4)
    s0 = ir.StageProgram(0, "p", b0.finish())
    b1 = ir.IRBuilder()
    b1.mov(0, dst="acc")
    with b1.for_("i", 0, 3):
        v = b1.deq(1)
        b1.binop("add", "acc", v, dst="acc")
    b1.store("@out", 0, "acc")
    s1 = ir.StageProgram(1, "c", b1.finish())
    pipe = _pipe(
        [s0, s1],
        [ir.QueueSpec(0, ("stage", 0), ("ra", 0)), ir.QueueSpec(1, ("ra", 0), ("stage", 1))],
        [ir.RASpec(0, ir.RA_SCAN, "@a", 0, 1)],
        {"a": None, "out": None},
    )
    res = Machine(MachineConfig()).run(
        RunSpec(pipe, {"a": [100, 1, 2, 3, 100], "out": [0]}, {})
    )
    assert res.arrays()["out"] == [6]


def test_chained_ras_bfs_shape():
    """nodes-indirect chained into edges-scan: the paper's BFS chain."""
    nodes = [0, 2, 5]
    edges = [7, 8, 9, 10, 11]
    b0 = ir.IRBuilder()
    for v in (0, 1):
        b0.enq(0, v)
        b0.enq(0, v + 1)
    s0 = ir.StageProgram(0, "p", b0.finish())
    b1 = ir.IRBuilder()
    with b1.for_("i", 0, 5):
        v = b1.deq(2)
        b1.store("@out", "i", v)
    s1 = ir.StageProgram(1, "c", b1.finish())
    pipe = _pipe(
        [s0, s1],
        [
            ir.QueueSpec(0, ("stage", 0), ("ra", 0)),
            ir.QueueSpec(1, ("ra", 0), ("ra", 1)),
            ir.QueueSpec(2, ("ra", 1), ("stage", 1)),
        ],
        [
            ir.RASpec(0, ir.RA_INDIRECT, "@nodes", 0, 1),
            ir.RASpec(1, ir.RA_SCAN, "@edges", 1, 2),
        ],
        {"nodes": None, "edges": None, "out": None},
    )
    res = Machine(MachineConfig()).run(
        RunSpec(pipe, {"nodes": nodes, "edges": edges, "out": [0] * 5}, {})
    )
    assert res.arrays()["out"] == edges


def test_ctrl_forwarded_through_chain():
    b0 = ir.IRBuilder()
    b0.enq(0, 0)
    b0.enq(0, 1)
    b0.enq_ctrl(0, "DONE")
    s0 = ir.StageProgram(0, "p", b0.finish())
    b1 = ir.IRBuilder()
    b1.mov(0, dst="acc")
    with b1.loop():
        v = b1.deq(1)
        b1.binop("add", "acc", v, dst="acc")
    b1.store("@out", 0, "acc")
    s1 = ir.StageProgram(1, "c", b1.finish(), handlers={1: [ir.Break(1)]})
    pipe = _pipe(
        [s0, s1],
        [ir.QueueSpec(0, ("stage", 0), ("ra", 0)), ir.QueueSpec(1, ("ra", 0), ("stage", 1))],
        [ir.RASpec(0, ir.RA_INDIRECT, "@a", 0, 1)],
        {"a": None, "out": None},
    )
    res = Machine(MachineConfig()).run(RunSpec(pipe, {"a": [5, 6], "out": [0]}, {}))
    assert res.arrays()["out"] == [11]


def test_ra_overlaps_memory():
    """An RA keeps ra_mshrs loads in flight: much faster than serialized."""
    import random

    rng = random.Random(0)
    n = 400
    table = [rng.randrange(n) for _ in range(n)]
    data = [rng.randrange(100) for _ in range(n)]

    def run(mshrs):
        b0 = ir.IRBuilder()
        with b0.for_("i", 0, n):
            idx = b0.load("@table", "i")
            b0.enq(0, idx)
        s0 = ir.StageProgram(0, "p", b0.finish())
        b1 = ir.IRBuilder()
        b1.mov(0, dst="acc")
        with b1.for_("i", 0, n):
            v = b1.deq(1)
            b1.binop("add", "acc", v, dst="acc")
        b1.store("@out", 0, "acc")
        s1 = ir.StageProgram(1, "c", b1.finish())
        pipe = _pipe(
            [s0, s1],
            [ir.QueueSpec(0, ("stage", 0), ("ra", 0)), ir.QueueSpec(1, ("ra", 0), ("stage", 1))],
            [ir.RASpec(0, ir.RA_INDIRECT, "@data", 0, 1)],
            {"table": None, "data": None, "out": None},
        )
        from repro.pipette.config import CacheConfig

        cfg = MachineConfig(
            ra_mshrs=mshrs,
            l1=CacheConfig(1024, 2, 4),
            l2=CacheConfig(2048, 4, 12),
            l3_per_core=CacheConfig(4096, 8, 40),
        )
        res = Machine(cfg).run(RunSpec(pipe, {"table": table, "data": data, "out": [0]}, {}))
        assert res.arrays()["out"] == [sum(data[i] for i in table)]
        return res.cycles

    assert run(16) < 0.7 * run(1)
