"""Pure-Python timeline analysis of a traced run.

Answers the questions the aggregate counters cannot: which stage is the
bottleneck, *when*, and what the worst individual stalls were. Everything
operates on a finished :class:`~repro.obs.tracer.Tracer`; nothing here
touches the simulator.
"""

from .tracer import STALL_BUCKETS


def _busy_by_thread(tracer):
    busy = {}
    for thread, t0, t1, _reason in tracer.spans:
        busy[thread] = busy.get(thread, 0.0) + (t1 - t0)
    return busy


def _overlap(a0, a1, b0, b1):
    lo = a0 if a0 > b0 else b0
    hi = a1 if a1 < b1 else b1
    return hi - lo if hi > lo else 0.0


def summarize_timeline(tracer, wall=None, windows=8, top_k=10):
    """Structured summary of one traced run.

    Returns a dict with:

    * ``wall`` — the analysis horizon (given, or the last event cycle);
    * ``utilization`` — per-thread ``{busy, utilization, stalls}`` where
      ``busy`` sums scheduler spans, ``utilization`` normalizes by wall,
      and ``stalls`` breaks attributed stall cycles down by bucket;
    * ``critical`` — per time window, the stage with the most busy cycles
      (the bottleneck stage over time: the stage a tuner should shrink);
    * ``top_stalls`` — the ``top_k`` longest individual stall intervals.
    """
    if wall is None:
        wall = 0.0
        for _thread, _t0, t1, _reason in tracer.spans:
            if t1 > wall:
                wall = t1
    busy = _busy_by_thread(tracer)

    stalls_by_thread = {}
    for thread, bucket, t0, t1 in tracer.stalls:
        buckets = stalls_by_thread.setdefault(
            thread, {bucket: 0.0 for bucket in STALL_BUCKETS}
        )
        buckets[bucket] = buckets.get(bucket, 0.0) + (t1 - t0)

    utilization = {}
    for thread in tracer.threads or sorted(busy):
        b = busy.get(thread, 0.0)
        utilization[thread] = {
            "busy": b,
            "utilization": (b / wall) if wall > 0 else 0.0,
            "stalls": stalls_by_thread.get(
                thread, {bucket: 0.0 for bucket in STALL_BUCKETS}
            ),
        }

    critical = []
    if wall > 0 and windows > 0:
        width = wall / windows
        for w in range(windows):
            w0, w1 = w * width, (w + 1) * width
            per_thread = {}
            for thread, t0, t1, _reason in tracer.spans:
                amount = _overlap(t0, t1, w0, w1)
                if amount > 0.0:
                    per_thread[thread] = per_thread.get(thread, 0.0) + amount
            if per_thread:
                # Deterministic argmax: break busy-time ties by name.
                winner = min(per_thread, key=lambda t: (-per_thread[t], t))
                critical.append(
                    {"window": [w0, w1], "stage": winner, "busy": per_thread[winner]}
                )
            else:
                critical.append({"window": [w0, w1], "stage": None, "busy": 0.0})

    ranked = sorted(
        tracer.stalls, key=lambda s: (-(s[3] - s[2]), s[0], s[1], s[2])
    )[: max(0, top_k)]
    top_stalls = [
        {"thread": thread, "bucket": bucket, "start": t0, "end": t1, "cycles": t1 - t0}
        for thread, bucket, t0, t1 in ranked
    ]

    return {
        "wall": wall,
        "utilization": utilization,
        "critical": critical,
        "top_stalls": top_stalls,
    }


def render_timeline(summary):
    """ASCII rendering of :func:`summarize_timeline` output."""
    lines = ["timeline over %.0f cycles" % summary["wall"]]
    lines.append("")
    lines.append(
        "%-26s %10s %6s %10s %10s %10s %10s"
        % ("thread", "busy", "util", "queue", "mem", "branch", "barrier")
    )
    for thread, row in summary["utilization"].items():
        stalls = row["stalls"]
        lines.append(
            "%-26s %10.0f %5.0f%% %10.0f %10.0f %10.0f %10.0f"
            % (
                thread,
                row["busy"],
                100.0 * row["utilization"],
                stalls.get("queue", 0.0),
                stalls.get("mem", 0.0),
                stalls.get("branch", 0.0),
                stalls.get("barrier", 0.0),
            )
        )
    if summary["critical"]:
        lines.append("")
        lines.append("bottleneck stage by window:")
        for row in summary["critical"]:
            lines.append(
                "  [%10.0f, %10.0f) %-26s busy %.0f"
                % (row["window"][0], row["window"][1], row["stage"] or "-", row["busy"])
            )
    if summary["top_stalls"]:
        lines.append("")
        lines.append("top stall intervals:")
        for row in summary["top_stalls"]:
            lines.append(
                "  %-26s %-8s %10.0f cycles at %.0f"
                % (row["thread"], row["bucket"], row["cycles"], row["start"])
            )
    return "\n".join(lines)
