"""Replicated, work-distributing pipelines (paper Sec. IV-C and Fig. 14).

Each replica owns a vertex shard (``owner(v) = min(v / chunk, R-1)``) and
runs the full pipeline on its own core: a fringe *scan* stage drives the
per-replica chained RAs (nodes indirect -> edges scan), a *visit* stage
pairs each neighbor with its per-vertex payload and distributes the pair
to the neighbor's owner (``enq_dist`` — the paper's data-centric
``#pragma distribute`` split into source- and destination-centric
sections), and an *update* stage performs all writes, which are therefore
owner-exclusive. Phases synchronize globally: per-replica fringe sizes
cross a double barrier through shared cells, and every replica continues
while the *global* total is nonzero.

End-of-phase control uses counting handlers: every visit stage broadcasts
one marker to all replicas, and each update stage's handler counts to R
before breaking — in-band control values doing replica coordination.
"""

from ..ir import (
    Assign,
    Break,
    Ctrl,
    If,
    IRBuilder,
    PipelineProgram,
    QueueSpec,
    RA_INDIRECT,
    RA_SCAN,
    RASpec,
    StageProgram,
)
from . import bfs as bfs_mod
from . import cc as cc_mod
from . import prd as prd_mod
from . import radii as radii_mod

Q_RA1, Q_PAIRS, Q_NGH, Q_UPD, Q_PAY = 0, 1, 2, 3, 4

#: Extra scalar parameters every replicated pipeline takes.
REPL_SCALARS = ["replicas", "chunk", "total_init", "rid"]


def owner_of(v, chunk, replicas):
    return min(v // chunk, replicas - 1)


def _phase_prologue(b):
    done = b.assign("le", ["repl_total", 0])
    with b.if_(done):
        b.break_()


def _phase_epilogue(b, rid, replicas, writes_next=False):
    if writes_next:
        b.write_shared("next%d" % rid, "next_size")
    b.barrier("phase")
    b.mov(0, dst="repl_total")
    for s in range(replicas):
        t = b.read_shared("next%d" % s)
        b.binop("add", "repl_total", t, dst="repl_total")
        if s == rid:
            b.mov(t, dst="fringe_size")
    b.barrier("phase-sync")


def _init_phase_regs(b):
    b.mov("total_init", dst="repl_total")
    b.mov("fringe_size_init", dst="fringe_size")


def _scan_stage(rid, replicas, payload_loader=None):
    """Stage 0: scan the local fringe, drive the RA chain, send payloads."""
    b = IRBuilder(temp_prefix="%s")
    b.mov("@fringe0", dst="cur_fringe")
    b.mov("@fringe1", dst="next_fringe")
    _init_phase_regs(b)
    with b.loop():
        _phase_prologue(b)
        with b.for_("i", 0, "fringe_size"):
            v = b.load("cur_fringe", "i")
            if payload_loader is not None:
                payload = payload_loader(b, v)
                b.enq(Q_PAY, payload)
            b.enq(Q_RA1, v)
            b.enq(Q_RA1, b.binop("add", v, 1))
            b.enq_ctrl(Q_RA1, Ctrl.NEXT)
        _phase_epilogue(b, rid, replicas)
        tmp = b.mov("cur_fringe")
        b.mov("next_fringe", dst="cur_fringe")
        b.mov(tmp, dst="next_fringe")
    return StageProgram(0, "scan", b.finish())


def _visit_stage(rid, replicas, has_payload):
    """Stage 1: pair neighbors with payloads, distribute to owners."""
    b = IRBuilder(temp_prefix="%v")
    _init_phase_regs(b)
    with b.loop():
        _phase_prologue(b)
        with b.for_("i", 0, "fringe_size"):
            if has_payload:
                payload = b.deq(Q_PAY, dst="payload")
            with b.loop():
                ngh = b.deq(Q_NGH)
                dest0 = b.binop("div", ngh, "chunk")
                last = b.binop("sub", "replicas", 1)
                dest = b.assign("min", [dest0, last])
                if has_payload:
                    packed = b.binop("pack2", ngh, "payload")
                    b.enq_dist(Q_UPD, packed, dest)
                else:
                    b.enq_dist(Q_UPD, ngh, dest)
        b.enq_ctrl_dist(Q_UPD, Ctrl.NEXT)
        _phase_epilogue(b, rid, replicas)
    return StageProgram(1, "visit", b.finish(), handlers={Q_NGH: [Break(1)]})


def _counting_handler():
    """Update-stage handler: break the stream loop after R phase markers."""
    return [
        Assign("dones", "add", ["dones", 1]),
        Assign("%alldone", "ge", ["dones", "replicas"]),
        If("%alldone", [Break(1)], []),
    ]


def _update_skeleton(rid, replicas, init, per_phase, body, phase_end, counters):
    """Shared shape of the update stage; callbacks fill app logic."""
    b = IRBuilder(temp_prefix="%u")
    b.mov("@fringe1", dst="next_fringe")
    b.mov("@fringe0", dst="other_fringe")
    _init_phase_regs(b)
    init(b)
    with b.loop():
        _phase_prologue(b)
        b.mov(0, dst="next_size")
        b.mov(0, dst="dones")
        per_phase(b)
        with b.loop():
            x = b.deq(Q_UPD)
            body(b, x)
        phase_end(b)
        _phase_epilogue(b, rid, replicas, writes_next=True)
        counters(b)
        tmp = b.mov("next_fringe")
        b.mov("other_fringe", dst="next_fringe")
        b.mov(tmp, dst="other_fringe")
    return StageProgram(2, "update", b.finish(), handlers={Q_UPD: _counting_handler()})


def _push(b, ngh):
    b.store("next_fringe", "next_size", ngh)
    b.binop("add", "next_size", 1, dst="next_size")


def _assemble(name, function, stages, has_payload, extra_shared, replicas):
    queues = [
        QueueSpec(Q_RA1, ("stage", 0), ("ra", 0), 24, "v/v+1"),
        QueueSpec(Q_PAIRS, ("ra", 0), ("ra", 1), 24, "edge bounds"),
        QueueSpec(Q_NGH, ("ra", 1), ("stage", 1), 24, "neighbors"),
        QueueSpec(Q_UPD, ("stage", 1), ("stage", 2), 24, "distributed pairs"),
    ]
    if has_payload:
        queues.append(QueueSpec(Q_PAY, ("stage", 0), ("stage", 1), 24, "payload"))
    ras = [
        RASpec(0, RA_INDIRECT, "@nodes", Q_RA1, Q_PAIRS),
        RASpec(1, RA_SCAN, "@edges", Q_PAIRS, Q_NGH),
    ]
    shared = {"next%d" % s for s in range(replicas)} | set(extra_shared)
    return PipelineProgram(
        name,
        stages,
        queues,
        ras,
        function.arrays,
        function.scalar_params + REPL_SCALARS,
        shared_vars=shared,
        meta={"replicated": True},
    )


# ---------------------------------------------------------------------------
# Per-application replicated pipelines


def bfs_replicated(rid, replicas):
    """Replicated BFS: flat neighbor stream, no payload."""
    function = bfs_mod.function()
    scan = _scan_stage(rid, replicas, payload_loader=None)
    visit = _visit_stage(rid, replicas, has_payload=False)

    def init(b):
        b.mov(0, dst="cur_dist")

    def per_phase(b):
        b.binop("add", "cur_dist", 1, dst="nd")

    def body(b, x):
        old = b.load("@distances", x)
        better = b.binop("gt", old, "nd")
        with b.if_(better):
            b.store("@distances", x, "nd")
            _push(b, x)

    def phase_end(b):
        pass

    def counters(b):
        b.binop("add", "cur_dist", 1, dst="cur_dist")

    update = _update_skeleton(rid, replicas, init, per_phase, body, phase_end, counters)
    return _assemble("bfs_repl%d" % rid, function, [scan, visit, update], False, (), replicas)


def cc_replicated(rid, replicas):
    """Replicated CC: neighbor paired with the source's label."""
    function = cc_mod.function()

    def payload(b, v):
        return b.load("@labels", v)

    scan = _scan_stage(rid, replicas, payload_loader=payload)
    visit = _visit_stage(rid, replicas, has_payload=True)

    def init(b):
        pass

    def per_phase(b):
        pass

    def body(b, x):
        ngh = b.assign("fst", [x])
        lv = b.assign("snd", [x])
        ln = b.load("@labels", ngh)
        better = b.binop("gt", ln, lv)
        with b.if_(better):
            b.store("@labels", ngh, lv)
            _push(b, ngh)

    def phase_end(b):
        pass

    def counters(b):
        pass

    update = _update_skeleton(rid, replicas, init, per_phase, body, phase_end, counters)
    return _assemble("cc_repl%d" % rid, function, [scan, visit, update], True, (), replicas)


def prd_replicated(rid, replicas):
    """Replicated PRD: neighbor paired with the source's share; apply nest
    runs over the replica's owned vertex range."""
    function = prd_mod.function()

    def payload(b, v):
        deg = b.load("@degree", v)
        dv = b.load("@delta", v)
        return b.binop("div", dv, b.binop("add", deg, 1))

    scan = _scan_stage(rid, replicas, payload_loader=payload)
    visit = _visit_stage(rid, replicas, has_payload=True)

    def init(b):
        lo = b.binop("mul", "rid", "chunk")
        b.mov(lo, dst="own_lo")
        hi = b.binop("add", lo, "chunk")
        b.assign("min", [hi, "n"], dst="own_hi")

    def per_phase(b):
        pass

    def body(b, x):
        ngh = b.assign("fst", [x])
        share = b.assign("snd", [x])
        s = b.load("@nghsum", ngh)
        b.store("@nghsum", ngh, b.binop("add", s, share))

    def phase_end(b):
        with b.for_("u", "own_lo", "own_hi"):
            s = b.load("@nghsum", "u")
            acc = b.binop("mul", s, "damping")
            mag = b.assign("select", [b.binop("lt", acc, 0.0), b.assign("neg", [acc]), acc])
            big = b.binop("gt", mag, "threshold")
            with b.if_(big):
                b.store("@delta", "u", acc)
                r = b.load("@rank", "u")
                b.store("@rank", "u", b.binop("add", r, acc))
                _push(b, "u")
            b.store("@nghsum", "u", 0.0)

    def counters(b):
        pass

    update = _update_skeleton(rid, replicas, init, per_phase, body, phase_end, counters)
    return _assemble("prd_repl%d" % rid, function, [scan, visit, update], True, (), replicas)


def radii_replicated(rid, replicas):
    """Replicated Radii: neighbor paired with the source's visited mask."""
    function = radii_mod.function()

    def payload(b, v):
        return b.load("@visited", v)

    scan = _scan_stage(rid, replicas, payload_loader=payload)
    visit = _visit_stage(rid, replicas, has_payload=True)

    def init(b):
        b.mov(1, dst="round")

    def per_phase(b):
        pass

    def body(b, x):
        ngh = b.assign("fst", [x])
        mv = b.assign("snd", [x])
        mn = b.load("@visited_next", ngh)
        un = b.binop("or", mn, mv)
        grew = b.binop("ne", un, mn)
        with b.if_(grew):
            b.store("@visited_next", ngh, un)
            lp = b.load("@lastpush", ngh)
            fresh = b.binop("ne", lp, "round")
            with b.if_(fresh):
                b.store("@lastpush", ngh, "round")
                _push(b, ngh)

    def phase_end(b):
        with b.for_("j", 0, "next_size"):
            u = b.load("next_fringe", "j")
            nv = b.load("@visited_next", u)
            b.store("@visited", u, nv)
            b.store("@radii_arr", u, "round")

    def counters(b):
        b.binop("add", "round", 1, dst="round")

    update = _update_skeleton(rid, replicas, init, per_phase, body, phase_end, counters)
    return _assemble("radii_repl%d" % rid, function, [scan, visit, update], True, (), replicas)


def bfs_replicated_nodist(rid, replicas):
    """Replicated BFS *without* distribution (2 stages, source-sharded).

    An ablation supporting Sec. IV-C: same-value races on ``distances`` are
    benign, so correctness survives dropping the distribute step — but
    discovered vertices stay with the replica that found them, so from a
    single root all work collapses onto one replica. Fig. 14's harness
    reports this row to show why the data-centric ``#pragma distribute``
    matters.
    """
    function = bfs_mod.function()
    scan = _scan_stage(rid, replicas, payload_loader=None)

    b = IRBuilder(temp_prefix="%u")
    b.mov("@fringe1", dst="next_fringe")
    b.mov("@fringe0", dst="other_fringe")
    _init_phase_regs(b)
    b.mov(0, dst="cur_dist")
    with b.loop():
        _phase_prologue(b)
        b.mov(0, dst="next_size")
        b.mov(0, dst="seen")
        nd = b.binop("add", "cur_dist", 1)
        # A replica whose local fringe is empty gets no markers this phase.
        nonempty = b.binop("gt", "fringe_size", 0)
        with b.if_(nonempty):
            with b.loop():
                ngh = b.deq(Q_NGH)
                old = b.load("@distances", ngh)
                better = b.binop("gt", old, nd)
                with b.if_(better):
                    b.store("@distances", ngh, nd)
                    _push(b, ngh)
        _phase_epilogue(b, rid, replicas, writes_next=True)
        b.binop("add", "cur_dist", 1, dst="cur_dist")
        tmp = b.mov("next_fringe")
        b.mov("other_fringe", dst="next_fringe")
        b.mov(tmp, dst="other_fringe")
    update = StageProgram(
        1,
        "update",
        b.finish(),
        handlers={
            Q_NGH: [
                Assign("seen", "add", ["seen", 1]),
                Assign("%vdone", "ge", ["seen", "fringe_size"]),
                If("%vdone", [Break(1)], []),
            ]
        },
    )

    queues = [
        QueueSpec(Q_RA1, ("stage", 0), ("ra", 0), 24, "v/v+1"),
        QueueSpec(Q_PAIRS, ("ra", 0), ("ra", 1), 24, "edge bounds"),
        QueueSpec(Q_NGH, ("ra", 1), ("stage", 1), 24, "neighbors"),
    ]
    ras = [
        RASpec(0, RA_INDIRECT, "@nodes", Q_RA1, Q_PAIRS),
        RASpec(1, RA_SCAN, "@edges", Q_PAIRS, Q_NGH),
    ]
    shared = {"next%d" % s for s in range(replicas)}
    return PipelineProgram(
        "bfs_repl_nodist%d" % rid,
        [scan, update],
        queues,
        ras,
        function.arrays,
        function.scalar_params + REPL_SCALARS,
        shared_vars=shared,
        meta={"replicated": True, "manual": True},
    )


BUILDERS = {
    "bfs": bfs_replicated,
    "cc": cc_replicated,
    "prd": prd_replicated,
    "radii": radii_replicated,
}

#: Hand-tuned replicated variants. For these apps the hand and compiler
#: structures coincide (the paper's tweaks — e.g. PRD's double replication —
#: are noted as deviations in EXPERIMENTS.md).
MANUAL_BUILDERS = {
    "bfs": bfs_replicated,
    "cc": cc_replicated,
    "prd": prd_replicated,
    "radii": radii_replicated,
}


# ---------------------------------------------------------------------------
# Environments: shared global arrays + per-replica fringes


def _owner_partition(items, n, replicas):
    chunk = (n + replicas - 1) // replicas
    shards = [[] for _ in range(replicas)]
    for v in items:
        shards[owner_of(v, chunk, replicas)].append(v)
    return shards, chunk


def make_envs(app, graph, replicas):
    """Per-replica ``(arrays, scalars)`` with shared global structures."""
    n = graph.n
    nodes = list(graph.nodes)
    edges = list(graph.edges)

    if app == "bfs":
        root = bfs_mod.default_root(graph)
        init_items = [root]
        shared_arrays = {
            "nodes": nodes,
            "edges": edges,
            "distances": [bfs_mod.INT_MAX] * n,
        }
        shared_arrays["distances"][root] = 0
        cap = n + 1
        extra_scalars = {}
    elif app == "cc":
        init_items = list(range(n))
        shared_arrays = {"nodes": nodes, "edges": edges, "labels": list(range(n))}
        cap = n + graph.m + 1
        extra_scalars = {}
    elif app == "prd":
        init_items = list(range(n))
        shared_arrays = {
            "nodes": nodes,
            "edges": edges,
            "degree": [graph.degree(v) for v in range(n)],
            "rank": [1.0 - prd_mod.DAMPING] * n,
            "delta": [1.0 - prd_mod.DAMPING] * n,
            "nghsum": [0.0] * n,
        }
        cap = n + 1
        extra_scalars = {"damping": prd_mod.DAMPING, "threshold": prd_mod.THRESHOLD}
    elif app == "radii":
        sources = radii_mod.sample_sources(graph)
        visited = [0] * n
        for bit, s in enumerate(sources):
            visited[s] = 1 << bit
        init_items = sources
        shared_arrays = {
            "nodes": nodes,
            "edges": edges,
            "visited": visited,
            "visited_next": list(visited),
            "radii_arr": [0] * n,
            "lastpush": [0] * n,
        }
        cap = n + 1
        extra_scalars = {}
    else:
        raise ValueError(app)

    shards, chunk = _owner_partition(init_items, n, replicas)
    envs = []
    for rid in range(replicas):
        fringe0 = [0] * cap
        for i, v in enumerate(shards[rid]):
            fringe0[i] = v
        arrays = dict(shared_arrays)
        arrays["fringe0"] = fringe0
        arrays["fringe1"] = [0] * cap
        scalars = {
            "n": n,
            "fringe_size_init": len(shards[rid]),
            "replicas": replicas,
            "chunk": chunk,
            "total_init": len(init_items),
            "rid": rid,
        }
        scalars.update(extra_scalars)
        envs.append((arrays, scalars))
    return envs
