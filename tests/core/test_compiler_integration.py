"""End-to-end compiler correctness: every pass subset runs right.

The strongest property in the repository: for every benchmark kernel and
every pass combination, the compiled pipeline computes exactly what the
serial kernel computes.
"""

import itertools

import pytest

from repro.core import compile_function
from repro.core.compiler import ALL_PASSES
from repro.runtime import run_pipeline, run_serial
from repro.workloads import bfs, cc, spmm
from repro.workloads.matrices import random_matrix


@pytest.mark.parametrize(
    "passes",
    [()]
    + [tuple(c) for k in (1, 2) for c in itertools.combinations(ALL_PASSES, k)]
    + [ALL_PASSES],
)
def test_bfs_all_pass_subsets(passes, tiny_graph, tiny_config):
    arrays, scalars = bfs.make_env(tiny_graph)
    pipe = compile_function(bfs.function(), num_stages=4, passes=passes)
    result = run_pipeline(pipe, arrays, scalars, config=tiny_config)
    assert bfs.check(result.arrays, tiny_graph), passes


@pytest.mark.parametrize("num_stages", [1, 2, 3, 4])
def test_bfs_stage_counts(num_stages, tiny_graph, tiny_config):
    arrays, scalars = bfs.make_env(tiny_graph)
    pipe = compile_function(bfs.function(), num_stages=num_stages, passes=ALL_PASSES)
    result = run_pipeline(pipe, arrays, scalars, config=tiny_config)
    assert bfs.check(result.arrays, tiny_graph)


def test_cc_full(tiny_graph, tiny_config):
    arrays, scalars = cc.make_env(tiny_graph)
    pipe = compile_function(cc.function(), num_stages=4, passes=ALL_PASSES)
    result = run_pipeline(pipe, arrays, scalars, config=tiny_config)
    assert cc.check(result.arrays, tiny_graph)


def test_spmm_full(tiny_config):
    a = random_matrix(40, 4, seed=7)
    arrays, scalars = spmm.make_env(a)
    pipe = compile_function(spmm.function(), num_stages=4, passes=ALL_PASSES)
    result = run_pipeline(pipe, arrays, scalars, config=tiny_config)
    assert spmm.check(result.arrays, a)


def test_point_indices_mode(tiny_graph, tiny_config):
    """Profile-guided selection: arbitrary ranked points compile correctly."""
    arrays, scalars = bfs.make_env(tiny_graph)
    for indices in [(0,), (1,), (0, 1), (1, 2), (2, 3)]:
        try:
            pipe = compile_function(
                bfs.function(), num_stages=len(indices) + 1, passes=ALL_PASSES, point_indices=indices
            )
        except Exception:
            continue  # some selections are legitimately unsplittable
        result = run_pipeline(pipe, arrays, scalars, config=tiny_config)
        assert bfs.check(result.arrays, tiny_graph), indices


def test_pipeline_faster_than_serial(tiny_graph, tiny_config):
    arrays, scalars = bfs.make_env(tiny_graph)
    serial = run_serial(bfs.function(), arrays, scalars, config=tiny_config)
    pipe = compile_function(bfs.function(), num_stages=4, passes=ALL_PASSES)
    result = run_pipeline(pipe, arrays, scalars, config=tiny_config)
    assert result.cycles < serial.cycles


def test_deterministic_compilation(tiny_graph):
    p1 = compile_function(bfs.function(), num_stages=4, passes=ALL_PASSES)
    p2 = compile_function(bfs.function(), num_stages=4, passes=ALL_PASSES)
    from repro.ir import format_pipeline

    assert format_pipeline(p1) == format_pipeline(p2)


def test_deterministic_simulation(tiny_graph, tiny_config):
    arrays, scalars = bfs.make_env(tiny_graph)
    pipe = compile_function(bfs.function(), num_stages=4, passes=ALL_PASSES)
    r1 = run_pipeline(pipe, arrays, scalars, config=tiny_config)
    r2 = run_pipeline(pipe, arrays, scalars, config=tiny_config)
    assert r1.cycles == r2.cycles
    assert r1.arrays == r2.arrays
