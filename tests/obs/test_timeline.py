"""Timeline summarizer over hand-built traces."""

import pytest

from repro.obs import Tracer, render_timeline, summarize_timeline


def _toy_tracer():
    tr = Tracer()
    tr.register_thread("s0")
    tr.register_thread("s1")
    # s0 busy the whole run; s1 busy only in the second half.
    tr.span("s0", 0.0, 50.0, ("deq", 0))
    tr.span("s0", 50.0, 100.0, "done")
    tr.span("s1", 50.0, 100.0, "done")
    tr.stall("s0", "queue", 10.0, 30.0)
    tr.stall("s1", "mem", 60.0, 65.0)
    tr.stall("s1", "mem", 70.0, 80.0)
    return tr


def test_utilization_and_stall_buckets():
    s = summarize_timeline(_toy_tracer(), windows=2)
    assert s["wall"] == 100.0
    assert s["utilization"]["s0"]["busy"] == 100.0
    assert s["utilization"]["s0"]["utilization"] == pytest.approx(1.0)
    assert s["utilization"]["s1"]["utilization"] == pytest.approx(0.5)
    assert s["utilization"]["s0"]["stalls"]["queue"] == 20.0
    assert s["utilization"]["s1"]["stalls"]["mem"] == 15.0
    assert s["utilization"]["s1"]["stalls"]["queue"] == 0.0


def test_bottleneck_windows():
    s = summarize_timeline(_toy_tracer(), windows=2)
    assert [row["stage"] for row in s["critical"]] == ["s0", "s0"]
    # First window: only s0 runs. Second window: both run 50 cycles and the
    # tie breaks deterministically by name.
    assert s["critical"][0]["busy"] == 50.0
    assert s["critical"][1]["busy"] == 50.0


def test_top_stalls_ranked_by_duration():
    s = summarize_timeline(_toy_tracer(), top_k=2)
    assert [row["cycles"] for row in s["top_stalls"]] == [20.0, 10.0]
    assert s["top_stalls"][0]["thread"] == "s0"


def test_explicit_wall_overrides_inferred():
    s = summarize_timeline(_toy_tracer(), wall=200.0, windows=1)
    assert s["wall"] == 200.0
    assert s["utilization"]["s0"]["utilization"] == pytest.approx(0.5)


def test_empty_tracer_is_fine():
    s = summarize_timeline(Tracer())
    assert s["wall"] == 0.0
    assert s["utilization"] == {}
    assert s["critical"] == []
    assert s["top_stalls"] == []
    assert "timeline over" in render_timeline(s)


def test_single_event_trace():
    tr = Tracer()
    tr.register_thread("s0")
    tr.span("s0", 10.0, 30.0, "work")
    s = summarize_timeline(tr)
    assert s["wall"] == 30.0
    assert s["utilization"]["s0"]["busy"] == 20.0
    assert s["utilization"]["s0"]["utilization"] == pytest.approx(20.0 / 30.0)
    assert s["top_stalls"] == []
    stages = [row["stage"] for row in s["critical"]]
    assert set(stages) == {None, "s0"}, "idle windows report no bottleneck"
    assert "s0" in render_timeline(s)


def test_single_stall_only_trace():
    # The horizon is inferred from spans only; a stall-only trace has a
    # zero wall but still attributes its stall cycles and ranks them.
    tr = Tracer()
    tr.register_thread("s0")
    tr.stall("s0", "mem", 5.0, 9.0)
    s = summarize_timeline(tr)
    assert s["wall"] == 0.0
    assert s["utilization"]["s0"]["busy"] == 0.0
    assert s["utilization"]["s0"]["utilization"] == 0.0
    assert s["utilization"]["s0"]["stalls"]["mem"] == 4.0
    assert s["critical"] == []
    assert [row["cycles"] for row in s["top_stalls"]] == [4.0]


def test_render_mentions_threads_and_buckets():
    text = render_timeline(summarize_timeline(_toy_tracer()))
    assert "s0" in text and "s1" in text
    assert "bottleneck stage by window:" in text
    assert "top stall intervals:" in text
