"""Loop-nest structure over a region tree.

Provides each statement's enclosing loop chain and depth, and detects the
*phase loop* — an outermost unbounded loop enclosing the work nest whose
iterations cannot be overlapped (paper Sec. IV-A, "Program phases", e.g.
the level loop of BFS or the convergence loop of PageRank-Delta).
"""

from __future__ import annotations

from typing import Any, Iterator, Optional


class LoopNestInfo:
    """Maps statements to their enclosing loops within one body."""

    def __init__(self, body: Any) -> None:
        self.body = body
        #: id(stmt) -> tuple of enclosing loop stmts
        self.parent_chain: dict[int, tuple[Any, ...]] = {}
        #: id(stmt) -> the list that holds the stmt
        self.container: dict[int, Any] = {}
        self._index(body, ())

    def _index(self, body: Any, chain: tuple[Any, ...]) -> None:
        for stmt in body:
            self.parent_chain[id(stmt)] = chain
            self.container[id(stmt)] = body
            inner = chain + (stmt,) if stmt.kind in ("for", "loop") else chain
            for block in stmt.blocks():
                self._index(block, inner)

    def loops_of(self, stmt: Any) -> tuple[Any, ...]:
        """Enclosing loops, outermost first."""
        return self.parent_chain.get(id(stmt), ())

    def depth_of(self, stmt: Any) -> int:
        return len(self.loops_of(stmt))

    def innermost_loop(self, stmt: Any) -> Optional[Any]:
        chain = self.loops_of(stmt)
        return chain[-1] if chain else None


def find_phase_loop(body: Any) -> Optional[Any]:
    """Find a top-level loop that acts as a *phase* loop.

    Heuristic mirroring the paper: the outermost statement list contains a
    single unbounded ``Loop`` (a lowered ``while``) that itself contains at
    least one nested loop (the work nest). Counted top-level ``For`` loops
    over the whole input (e.g. SpMV's row loop) are *not* phases — their
    iterations pipeline freely.
    """
    candidates = [s for s in body if s.kind == "loop"]
    if len(candidates) != 1:
        return None
    loop = candidates[0]
    has_nest = any(inner.kind in ("for", "loop") for inner in _walk_shallow(loop.body))
    return loop if has_nest else None


def _walk_shallow(body: Any) -> Iterator[Any]:
    """Statements of a body including those under Ifs, but not inside loops."""
    for stmt in body:
        yield stmt
        if stmt.kind == "if":
            for block in stmt.blocks():
                for inner in _walk_shallow(block):
                    yield inner


def estimated_trip_weight(depth: int, base: int = 8) -> float:
    """Frequency weight of code at loop ``depth`` (cost model, Sec. V)."""
    return float(base**depth)
