"""Mini-Taco lowering: tensor expressions -> mini-C kernels.

Like Taco, the generated code iterates compressed levels with pos/crd
loops, keeps every pointer ``restrict``-qualified, and names arrays
``T_pos``/``T_crd``/``T_val``. Three schedule families cover the paper's
benchmarks (and compose with scalar scaling and dense addends):

* **row-reduction** — lhs indexed by the sparse operand's row var
  (SpMV ``y(i)=A(i,j)*x(j)``, Residual ``y(i)=b(i)-A(i,j)*x(j)``);
* **scatter** — the contraction var is the sparse operand's row var
  (MTMul ``y(j) = alpha*A(i,j)*x(i) + beta*z(j)``);
* **sampled dense-dense** — sparse output sampled at a sparse operand's
  nonzeros with a dense contraction (SDDMM ``A(i,j)=B(i,j)*C(i,k)*D(k,j)``).

The emitted source goes through the same mini-C frontend as hand-written
kernels, which is the paper's point: Phloem slots in behind domain-specific
compilers unchanged.
"""

from ..errors import CompileError
from .expr import parse_expression
from .formats import COMPRESSED, DENSE


class LoweredKernel:
    """Generated kernel: C source plus a data binder."""

    def __init__(self, name, source, binder, output):
        self.name = name
        self.source = source
        self._binder = binder
        self.output = output  # name of the result array

    def bind(self, data):
        """Map tensor objects/scalars to simulator arrays and scalars.

        ``data`` maps tensor names to :class:`~repro.workloads.matrices
        .CSRMatrix` (CSR tensors), flat lists (dense), or numbers (scalars).
        """
        return self._binder(data)


def _find(decls, name):
    if name not in decls:
        raise CompileError("tensor %r has no format declaration" % name)
    return decls[name]


def lower(name, expression, decls):
    """Lower ``expression`` (text or TensorExpr) under ``decls`` to mini-C."""
    expr = parse_expression(expression) if isinstance(expression, str) else expression
    lhs_decl = _find(decls, expr.lhs.name)

    if lhs_decl.formats == (DENSE, COMPRESSED):
        return _lower_sampled(name, expr, decls)

    sparse_refs = [
        r
        for t in expr.terms
        for r in t.refs
        if _find(decls, r.name).formats == (DENSE, COMPRESSED)
    ]
    if len(sparse_refs) != 1:
        raise CompileError("exactly one CSR operand is supported (got %d)" % len(sparse_refs))
    sparse = sparse_refs[0]
    row_var, col_var = sparse.indices

    if row_var in expr.lhs.indices:
        return _lower_row_reduction(name, expr, decls, sparse)
    if col_var in expr.lhs.indices and row_var in expr.contraction_vars:
        return _lower_scatter(name, expr, decls, sparse)
    raise CompileError("unsupported expression shape: %r" % expr)


def _scalar_product(scalars):
    return " * ".join(scalars) if scalars else None


def _lower_row_reduction(name, expr, decls, sparse):
    """SpMV-family: ``y(i) = [b(i) +/-] [alpha *] A(i,j) * x(j)``."""
    mat = sparse.name
    row_var, col_var = sparse.indices

    sparse_term = None
    dense_terms = []
    for term in expr.terms:
        if sparse in term.refs:
            if sparse_term is not None:
                raise CompileError("the CSR operand may appear in one term only")
            sparse_term = term
        else:
            dense_terms.append(term)
    others = [r for r in sparse_term.refs if r is not sparse]
    if len(others) != 1 or others[0].indices != (col_var,):
        raise CompileError("row reduction needs exactly one dense vector over %r" % col_var)
    vec = others[0].name

    scalars = sorted(
        {s for t in expr.terms for s in t.scalars}
    )
    params = ["int n"] + ["double %s" % s for s in scalars]
    args = [
        "const int* restrict %s_pos" % mat,
        "const int* restrict %s_crd" % mat,
        "const double* restrict %s_val" % mat,
        "const double* restrict %s" % vec,
    ]
    for term in dense_terms:
        if len(term.refs) != 1 or term.refs[0].indices != expr.lhs.indices:
            raise CompileError("dense addend must be a vector over the row variable")
        args.append("const double* restrict %s" % term.refs[0].name)
    out = expr.lhs.name
    args.append("double* restrict %s" % out)

    acc_scale = _scalar_product(sparse_term.scalars)
    acc_expr = "acc" if acc_scale is None else "%s * acc" % acc_scale
    if sparse_term.sign < 0:
        acc_expr = "0.0 - (%s)" % acc_expr
    combine = acc_expr
    for term in dense_terms:
        piece = term.refs[0].name + "[i]"
        scale = _scalar_product(term.scalars)
        if scale is not None:
            piece = "%s * %s" % (scale, piece)
        combine = "%s %s %s" % (piece, "+" if term.sign > 0 else "-", combine) \
            if term is dense_terms[0] else "%s + %s" % (combine, piece)

    source = """
#pragma phloem
void %(name)s(%(args)s, %(params)s) {
  for (int i = 0; i < n; i++) {
    double acc = 0.0;
    int start = %(mat)s_pos[i];
    int end = %(mat)s_pos[i + 1];
    for (int q = start; q < end; q++) {
      int k = %(mat)s_crd[q];
      acc = acc + %(mat)s_val[q] * %(vec)s[k];
    }
    %(out)s[i] = %(combine)s;
  }
}
""" % {
        "name": name,
        "args": ", ".join(args),
        "params": ", ".join(params),
        "mat": mat,
        "vec": vec,
        "out": out,
        "combine": combine,
    }

    def binder(data):
        matrix = data[mat]
        arrays = {
            "%s_pos" % mat: list(matrix.pos),
            "%s_crd" % mat: list(matrix.crd),
            "%s_val" % mat: list(matrix.val),
            vec: list(data[vec]),
            out: [0.0] * matrix.nrows,
        }
        for term in dense_terms:
            dn = term.refs[0].name
            arrays[dn] = list(data[dn])
        scalars_env = {"n": matrix.nrows}
        for s in scalars:
            scalars_env[s] = float(data[s])
        return arrays, scalars_env

    return LoweredKernel(name, source, binder, out)


def _lower_scatter(name, expr, decls, sparse):
    """MTMul-family: ``y(j) = alpha * A(i,j) * x(i) + beta * z(j)``."""
    mat = sparse.name
    row_var, col_var = sparse.indices

    sparse_term = None
    dense_terms = []
    for term in expr.terms:
        if sparse in term.refs:
            sparse_term = term
        else:
            dense_terms.append(term)
    if sparse_term is None or sparse_term.sign < 0:
        raise CompileError("scatter form requires a positive sparse term")
    others = [r for r in sparse_term.refs if r is not sparse]
    if len(others) != 1 or others[0].indices != (row_var,):
        raise CompileError("scatter needs a dense vector over the row variable")
    vec = others[0].name
    out = expr.lhs.name

    scalars = sorted({s for t in expr.terms for s in t.scalars})
    args = [
        "const int* restrict %s_pos" % mat,
        "const int* restrict %s_crd" % mat,
        "const double* restrict %s_val" % mat,
        "const double* restrict %s" % vec,
    ]
    init = "0.0"
    for term in dense_terms:
        if len(term.refs) != 1 or term.refs[0].indices != expr.lhs.indices:
            raise CompileError("dense addend must be a vector over the output variable")
        dn = term.refs[0].name
        args.append("const double* restrict %s" % dn)
        piece = "%s[j]" % dn
        scale = _scalar_product(term.scalars)
        if scale is not None:
            piece = "%s * %s" % (scale, piece)
        init = piece if term.sign > 0 else "0.0 - %s" % piece
    args.append("double* restrict %s" % out)
    params = ["int n", "int ncols"] + ["double %s" % s for s in scalars]

    contrib = "%s_val[q] * xi" % mat
    scale = _scalar_product(sparse_term.scalars)
    xi_expr = "%s[i]" % vec if scale is None else "%s * %s[i]" % (scale, vec)

    source = """
#pragma phloem
void %(name)s(%(args)s, %(params)s) {
  for (int j = 0; j < ncols; j++) {
    %(out)s[j] = %(init)s;
  }
  for (int i = 0; i < n; i++) {
    double xi = %(xi)s;
    int start = %(mat)s_pos[i];
    int end = %(mat)s_pos[i + 1];
    for (int q = start; q < end; q++) {
      int j = %(mat)s_crd[q];
      %(out)s[j] = %(out)s[j] + %(contrib)s;
    }
  }
}
""" % {
        "name": name,
        "args": ", ".join(args),
        "params": ", ".join(params),
        "mat": mat,
        "out": out,
        "init": init,
        "xi": xi_expr,
        "contrib": contrib,
    }

    def binder(data):
        matrix = data[mat]
        arrays = {
            "%s_pos" % mat: list(matrix.pos),
            "%s_crd" % mat: list(matrix.crd),
            "%s_val" % mat: list(matrix.val),
            vec: list(data[vec]),
            out: [0.0] * matrix.ncols,
        }
        for term in dense_terms:
            dn = term.refs[0].name
            arrays[dn] = list(data[dn])
        scalars_env = {"n": matrix.nrows, "ncols": matrix.ncols}
        for s in scalars:
            scalars_env[s] = float(data[s])
        return arrays, scalars_env

    return LoweredKernel(name, source, binder, out)


def _lower_sampled(name, expr, decls):
    """SDDMM: ``A(i,j) = B(i,j) * C(i,k) * D(k,j)`` with dense C, D."""
    if len(expr.terms) != 1:
        raise CompileError("sampled form supports a single term")
    term = expr.terms[0]
    lhs = expr.lhs
    i_var, j_var = lhs.indices
    sparse_in = None
    dense = []
    for ref in term.refs:
        fmt = _find(decls, ref.name).formats
        if fmt == (DENSE, COMPRESSED):
            sparse_in = ref
        else:
            dense.append(ref)
    if sparse_in is None or sparse_in.indices != (i_var, j_var) or len(dense) != 2:
        raise CompileError("sampled form needs B(i,j) sparse and two dense matrices")
    (k_var,) = expr.contraction_vars
    c_ref = next(r for r in dense if r.indices == (i_var, k_var))
    d_ref = next(r for r in dense if r.indices == (k_var, j_var))
    bmat, out = sparse_in.name, lhs.name
    cmat, dmat = c_ref.name, d_ref.name

    source = """
#pragma phloem
void %(name)s(const int* restrict %(b)s_pos, const int* restrict %(b)s_crd,
              const double* restrict %(b)s_val, const double* restrict %(c)s,
              const double* restrict %(d)s, double* restrict %(out)s_val,
              int n, int kdim, int ncols) {
  for (int i = 0; i < n; i++) {
    int start = %(b)s_pos[i];
    int end = %(b)s_pos[i + 1];
    int crow = i * kdim;
    for (int q = start; q < end; q++) {
      int j = %(b)s_crd[q];
      double acc = 0.0;
      for (int k = 0; k < kdim; k++) {
        acc = acc + %(c)s[crow + k] * %(d)s[k * ncols + j];
      }
      %(out)s_val[q] = %(b)s_val[q] * acc;
    }
  }
}
""" % {
        "name": name,
        "b": bmat,
        "c": cmat,
        "d": dmat,
        "out": out,
    }

    def binder(data):
        matrix = data[bmat]
        cdata = data[cmat]  # (flat list, kdim)
        ddata = data[dmat]
        cflat, kdim = cdata
        dflat, ncols = ddata
        arrays = {
            "%s_pos" % bmat: list(matrix.pos),
            "%s_crd" % bmat: list(matrix.crd),
            "%s_val" % bmat: list(matrix.val),
            cmat: list(cflat),
            dmat: list(dflat),
            "%s_val" % out: [0.0] * matrix.nnz,
        }
        scalars_env = {"n": matrix.nrows, "kdim": kdim, "ncols": ncols}
        return arrays, scalars_env

    return LoweredKernel(name, source, binder, "%s_val" % out)
