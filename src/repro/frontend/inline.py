"""Function inlining (the paper's stated future work, Sec. IV-A).

Phloem "currently works on a single procedure... Calls to other functions
are supported, but Phloem does not decouple within those calls. Inlining
could remove this limitation; we leave this to future work." This module
implements that future work at the AST level: calls to functions *defined
in the same translation unit* are spliced into the caller before lowering,
so their loads and loops participate in decoupling; calls to undefined
names remain opaque intrinsics, exactly as before.

Supported callees: non-recursive functions whose body ends in at most one
trailing ``return expr;`` (void or single-value helpers — the shape small
C kernels factor into).
"""

from ..errors import LoweringError
from . import cast


def _rename_expr(expr, mapping):
    if isinstance(expr, cast.Name):
        return cast.Name(mapping.get(expr.ident, expr.ident), expr.line)
    if isinstance(expr, cast.Number):
        return expr
    if isinstance(expr, cast.Unary):
        return cast.Unary(expr.op, _rename_expr(expr.operand, mapping), expr.line)
    if isinstance(expr, cast.Binary):
        return cast.Binary(
            expr.op, _rename_expr(expr.lhs, mapping), _rename_expr(expr.rhs, mapping), expr.line
        )
    if isinstance(expr, cast.Ternary):
        return cast.Ternary(
            _rename_expr(expr.cond, mapping),
            _rename_expr(expr.then_expr, mapping),
            _rename_expr(expr.else_expr, mapping),
            expr.line,
        )
    if isinstance(expr, cast.Assign):
        return cast.Assign(
            _rename_expr(expr.target, mapping), expr.op, _rename_expr(expr.value, mapping), expr.line
        )
    if isinstance(expr, cast.IncDec):
        return cast.IncDec(_rename_expr(expr.target, mapping), expr.delta, expr.is_prefix, expr.line)
    if isinstance(expr, cast.Index):
        return cast.Index(_rename_expr(expr.base, mapping), _rename_expr(expr.index, mapping), expr.line)
    if isinstance(expr, cast.CallExpr):
        return cast.CallExpr(expr.func, [_rename_expr(a, mapping) for a in expr.args], expr.line)
    raise LoweringError("cannot rename expression %r" % type(expr).__name__)


def _rename_stmt(stmt, mapping):
    if isinstance(stmt, cast.VarDecl):
        new_name = mapping.get(stmt.name, stmt.name)
        init = _rename_expr(stmt.init, mapping) if stmt.init is not None else None
        return cast.VarDecl(stmt.type, new_name, init, stmt.line)
    if isinstance(stmt, cast.ExprStmt):
        return cast.ExprStmt(_rename_expr(stmt.expr, mapping), stmt.line)
    if isinstance(stmt, cast.IfStmt):
        return cast.IfStmt(
            _rename_expr(stmt.cond, mapping),
            [_rename_stmt(s, mapping) for s in stmt.then_body],
            [_rename_stmt(s, mapping) for s in stmt.else_body],
            stmt.line,
        )
    if isinstance(stmt, cast.WhileStmt):
        return cast.WhileStmt(
            _rename_expr(stmt.cond, mapping),
            [_rename_stmt(s, mapping) for s in stmt.body],
            stmt.line,
        )
    if isinstance(stmt, cast.ForStmt):
        return cast.ForStmt(
            [_rename_stmt(s, mapping) for s in stmt.init],
            _rename_expr(stmt.cond, mapping) if stmt.cond is not None else None,
            _rename_expr(stmt.post, mapping) if stmt.post is not None else None,
            [_rename_stmt(s, mapping) for s in stmt.body],
            stmt.line,
        )
    if isinstance(stmt, (cast.BreakStmt, cast.ContinueStmt, cast.PragmaStmt)):
        return stmt
    if isinstance(stmt, cast.ReturnStmt):
        expr = _rename_expr(stmt.expr, mapping) if stmt.expr is not None else None
        return cast.ReturnStmt(expr, stmt.line)
    raise LoweringError("cannot rename statement %r" % type(stmt).__name__)


class _Inliner:
    def __init__(self, unit):
        self.defs = {fd.name: fd for fd in unit}
        self.counter = 0

    def _declared_names(self, funcdef):
        names = {p.name for p in funcdef.params}

        def visit(stmts):
            for stmt in stmts:
                if isinstance(stmt, cast.VarDecl):
                    names.add(stmt.name)
                elif isinstance(stmt, cast.IfStmt):
                    visit(stmt.then_body)
                    visit(stmt.else_body)
                elif isinstance(stmt, (cast.WhileStmt,)):
                    visit(stmt.body)
                elif isinstance(stmt, cast.ForStmt):
                    visit(stmt.init)
                    visit(stmt.body)

        visit(funcdef.body)
        return names

    def _splice_call(self, call, out, active):
        """Inline ``call``; returns the expression replacing it (or None)."""
        callee = self.defs[call.func]
        if call.func in active:
            raise LoweringError("recursive call to %r cannot be inlined" % call.func)
        if len(call.args) != len(callee.params):
            raise LoweringError(
                "call to %r passes %d args for %d parameters"
                % (call.func, len(call.args), len(callee.params))
            )

        self.counter += 1
        suffix = "__inl%d" % self.counter
        mapping = {}
        prologue = []
        for param, arg in zip(callee.params, call.args):
            if param.type.is_pointer:
                if not isinstance(arg, cast.Name):
                    raise LoweringError(
                        "pointer argument to %r must be an array name" % call.func
                    )
                mapping[param.name] = arg.ident  # alias straight through
            else:
                local = param.name + suffix
                mapping[param.name] = local
                prologue.append(cast.VarDecl(param.type, local, arg, call.line))
        for name in self._declared_names(callee):
            mapping.setdefault(name, name + suffix)

        body = [_rename_stmt(s, mapping) for s in callee.body]

        # Materialize the trailing return *before* recursing, so calls in
        # the returned expression are themselves inlined.
        result_expr = None
        if body and isinstance(body[-1], cast.ReturnStmt):
            ret = body.pop()
            if ret.expr is not None:
                ret_name = "__ret" + suffix
                ret_type = cast.CType(callee.ret_type.base)
                body.append(cast.VarDecl(ret_type, ret_name, ret.expr, call.line))
                result_expr = cast.Name(ret_name, call.line)
        if any(isinstance(s, cast.ReturnStmt) for s in _walk_all(body)):
            raise LoweringError("%r has a non-trailing return; cannot inline" % call.func)
        body = self._inline_body(body, active | {call.func})

        out.extend(prologue)
        out.extend(body)
        return result_expr

    def _rewrite_expr(self, expr, out, active):
        """Hoist inlinable calls out of ``expr``; returns the new expression."""
        if isinstance(expr, cast.CallExpr):
            args = [self._rewrite_expr(a, out, active) for a in expr.args]
            call = cast.CallExpr(expr.func, args, expr.line)
            if expr.func in self.defs:
                result = self._splice_call(call, out, active)
                if result is None:
                    raise LoweringError(
                        "void function %r used as a value" % expr.func
                    )
                return result
            return call
        if isinstance(expr, cast.Unary):
            return cast.Unary(expr.op, self._rewrite_expr(expr.operand, out, active), expr.line)
        if isinstance(expr, cast.Binary):
            return cast.Binary(
                expr.op,
                self._rewrite_expr(expr.lhs, out, active),
                self._rewrite_expr(expr.rhs, out, active),
                expr.line,
            )
        if isinstance(expr, cast.Ternary):
            return cast.Ternary(
                self._rewrite_expr(expr.cond, out, active),
                self._rewrite_expr(expr.then_expr, out, active),
                self._rewrite_expr(expr.else_expr, out, active),
                expr.line,
            )
        if isinstance(expr, cast.Assign):
            return cast.Assign(
                self._rewrite_expr(expr.target, out, active),
                expr.op,
                self._rewrite_expr(expr.value, out, active),
                expr.line,
            )
        if isinstance(expr, cast.Index):
            return cast.Index(
                self._rewrite_expr(expr.base, out, active),
                self._rewrite_expr(expr.index, out, active),
                expr.line,
            )
        if isinstance(expr, cast.IncDec):
            return cast.IncDec(
                self._rewrite_expr(expr.target, out, active), expr.delta, expr.is_prefix, expr.line
            )
        return expr

    def _inline_body(self, body, active):
        out = []
        for stmt in body:
            if isinstance(stmt, cast.ExprStmt) and isinstance(stmt.expr, cast.CallExpr) and stmt.expr.func in self.defs:
                args = [self._rewrite_expr(a, out, active) for a in stmt.expr.args]
                self._splice_call(cast.CallExpr(stmt.expr.func, args, stmt.expr.line), out, active)
                continue
            if isinstance(stmt, cast.ExprStmt):
                out.append(cast.ExprStmt(self._rewrite_expr(stmt.expr, out, active), stmt.line))
            elif isinstance(stmt, cast.VarDecl):
                init = self._rewrite_expr(stmt.init, out, active) if stmt.init is not None else None
                out.append(cast.VarDecl(stmt.type, stmt.name, init, stmt.line))
            elif isinstance(stmt, cast.IfStmt):
                cond = self._rewrite_expr(stmt.cond, out, active)
                out.append(
                    cast.IfStmt(
                        cond,
                        self._inline_body(stmt.then_body, active),
                        self._inline_body(stmt.else_body, active),
                        stmt.line,
                    )
                )
            elif isinstance(stmt, cast.WhileStmt):
                # Calls in while conditions would need per-iteration
                # re-hoisting; reject rather than silently change semantics.
                if _expr_calls_defined(stmt.cond, self.defs):
                    raise LoweringError("cannot inline a call in a while condition")
                out.append(cast.WhileStmt(stmt.cond, self._inline_body(stmt.body, active), stmt.line))
            elif isinstance(stmt, cast.ForStmt):
                if (stmt.cond is not None and _expr_calls_defined(stmt.cond, self.defs)) or (
                    stmt.post is not None and _expr_calls_defined(stmt.post, self.defs)
                ):
                    raise LoweringError("cannot inline a call in a loop header")
                out.append(
                    cast.ForStmt(
                        self._inline_body(stmt.init, active),
                        stmt.cond,
                        stmt.post,
                        self._inline_body(stmt.body, active),
                        stmt.line,
                    )
                )
            else:
                out.append(stmt)
        return out

    def inline(self, funcdef):
        return cast.FuncDef(
            funcdef.name,
            funcdef.ret_type,
            funcdef.params,
            self._inline_body(funcdef.body, {funcdef.name}),
            funcdef.pragmas,
            funcdef.line,
        )


def _walk_all(body):
    for stmt in body:
        yield stmt
        if isinstance(stmt, cast.IfStmt):
            yield from _walk_all(stmt.then_body)
            yield from _walk_all(stmt.else_body)
        elif isinstance(stmt, cast.WhileStmt):
            yield from _walk_all(stmt.body)
        elif isinstance(stmt, cast.ForStmt):
            yield from _walk_all(stmt.init)
            yield from _walk_all(stmt.body)


def _expr_calls_defined(expr, defs):
    stack = [expr]
    while stack:
        e = stack.pop()
        if isinstance(e, cast.CallExpr):
            if e.func in defs:
                return True
            stack.extend(e.args)
        elif isinstance(e, cast.Binary):
            stack.extend([e.lhs, e.rhs])
        elif isinstance(e, cast.Unary):
            stack.append(e.operand)
        elif isinstance(e, cast.Ternary):
            stack.extend([e.cond, e.then_expr, e.else_expr])
        elif isinstance(e, cast.Index):
            stack.extend([e.base, e.index])
        elif isinstance(e, (cast.Assign,)):
            stack.extend([e.target, e.value])
        elif isinstance(e, cast.IncDec):
            stack.append(e.target)
    return False


def inline_unit(funcdefs, target):
    """Inline all same-unit calls inside the FuncDef named ``target``."""
    inliner = _Inliner(funcdefs)
    for fd in funcdefs:
        if fd.name == target:
            return inliner.inline(fd)
    raise LoweringError("no function named %r in unit" % target)
