"""Parallel job fan-out: determinism, nesting guard, suite equivalence."""

import random

import pytest

from repro.bench.harness import adapter_for, run_suite
from repro.bench.parallel import (
    Job,
    clear_job_log,
    in_worker,
    job_log,
    resolve_jobs,
    run_jobs,
)
from repro.workloads.datasets import GraphInput
from repro.workloads.graphs import uniform_random


def test_resolve_jobs_precedence(monkeypatch):
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    assert resolve_jobs() == 1
    monkeypatch.setenv("REPRO_JOBS", "3")
    assert resolve_jobs() == 3
    assert resolve_jobs(2) == 2  # explicit beats env
    monkeypatch.setenv("REPRO_JOBS", "junk")
    assert resolve_jobs() == 1
    assert resolve_jobs(0) == 1  # clamped


def test_run_jobs_preserves_submission_order():
    jobs = [Job(i, lambda v=i: v * v) for i in range(6)]
    serial = [r.value for r in run_jobs(jobs, workers=1)]
    pooled = [r.value for r in run_jobs(jobs, workers=3)]
    assert serial == [0, 1, 4, 9, 16, 25]
    assert pooled == serial


def test_run_jobs_seeds_rng_identically():
    """Per-job seeds derive from keys, so the pool can't perturb RNG use."""
    jobs = [Job("k%d" % i, lambda: random.random()) for i in range(4)]
    serial = [r.value for r in run_jobs(jobs, workers=1)]
    pooled = [r.value for r in run_jobs(jobs, workers=2)]
    assert pooled == serial


def test_run_jobs_closures_need_not_pickle():
    """Job callables ride through fork as closures; only results pickle."""
    payload = {"unpicklable": lambda: 7}
    jobs = [Job(i, lambda p=payload: p["unpicklable"]()) for i in range(2)]
    assert [r.value for r in run_jobs(jobs, workers=2)] == [7, 7]


def test_nested_fanout_degrades_to_serial(monkeypatch):
    monkeypatch.setenv("REPRO_PARALLEL_WORKER", "1")
    assert in_worker()
    jobs = [Job(i, lambda v=i: v) for i in range(3)]
    assert [r.value for r in run_jobs(jobs, workers=4)] == [0, 1, 2]


def test_job_log_accumulates():
    clear_job_log()
    run_jobs([Job("a", lambda: 1), Job("b", lambda: 2)], workers=2)
    entries = job_log()
    assert [e.key for e in entries] == ["a", "b"]
    assert all(e.wall >= 0 for e in entries)
    clear_job_log()
    assert job_log() == []


@pytest.fixture(scope="module")
def micro_inputs():
    return [
        GraphInput("p1", "test", lambda: uniform_random(70, 3, seed=3)),
        GraphInput("p2", "test", lambda: uniform_random(80, 3, seed=4)),
    ]


def test_run_suite_parallel_matches_serial(micro_inputs, tiny_config, monkeypatch, tmp_path):
    """The acceptance bar: --jobs N output is bit-identical to serial."""
    from repro import cache

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    adapter = adapter_for("bfs")
    variants = ("serial", "data-parallel", "phloem-static", "manual")

    def snapshot(jobs):
        cache.reset()
        suite = run_suite(
            adapter,
            micro_inputs,
            [],
            config=tiny_config,
            variants=variants,
            jobs=jobs,
        )
        return {
            v: [(r.input_name, r.cycles, r.ok, r.breakdown, r.energy) for r in suite[v]]
            for v in variants
        }

    assert snapshot(2) == snapshot(1)
