"""Program containers for the Phloem IR.

A serial kernel parses/lowers into a :class:`Function`. The Phloem compiler
turns a Function into a :class:`PipelineProgram`: a set of
:class:`StageProgram` bodies connected by :class:`QueueSpec` queues, with
memory accesses optionally offloaded to :class:`RASpec` reference
accelerators. Pipeline programs are what the Pipette simulator executes.
"""

from .stmts import walk
from .values import is_array_symbol


class ArrayDecl:
    """Declaration of an array (a pointer parameter in the mini-C source).

    ``restrict`` mirrors the C qualifier: the paper requires precise aliasing
    information, which in practice means every pointer parameter is
    restrict-qualified. ``readonly`` marks ``const`` pointers.
    """

    __slots__ = ("name", "elem_size", "readonly", "restrict", "is_float")

    def __init__(self, name, elem_size=8, readonly=False, restrict=True, is_float=False):
        self.name = name
        self.elem_size = elem_size
        self.readonly = readonly
        self.restrict = restrict
        self.is_float = is_float

    @property
    def symbol(self):
        return "@" + self.name

    def __repr__(self):
        quals = []
        if self.readonly:
            quals.append("const")
        if self.restrict:
            quals.append("restrict")
        return "ArrayDecl(%s, %dB%s)" % (self.name, self.elem_size, " " + " ".join(quals) if quals else "")


class Intrinsic:
    """An opaque callable the IR may invoke (e.g. the paper's ``work()``).

    ``cost`` is the number of issue slots the call consumes in the timing
    model; ``fn`` provides functional semantics.
    """

    __slots__ = ("name", "fn", "cost")

    def __init__(self, name, fn, cost=10):
        self.name = name
        self.fn = fn
        self.cost = cost


class Function:
    """A lowered serial kernel: the unit Phloem transforms.

    Attributes:
        name: kernel name from the source.
        scalar_params: ordered names of scalar parameters.
        arrays: mapping of array name -> :class:`ArrayDecl`.
        body: list of IR statements (a region tree).
        pragmas: parsed ``#pragma`` annotations (Table II).
        intrinsics: mapping of callable name -> :class:`Intrinsic`.
    """

    def __init__(self, name, scalar_params, arrays, body, pragmas=None, intrinsics=None):
        self.name = name
        self.scalar_params = list(scalar_params)
        self.arrays = dict(arrays)
        self.body = body
        self.pragmas = dict(pragmas or {})
        self.intrinsics = dict(intrinsics or {})

    def array_for(self, operand):
        """Resolve an array operand to its decl, if it is a literal symbol."""
        if is_array_symbol(operand):
            return self.arrays.get(operand[1:])
        return None

    def all_stmts(self):
        return walk(self.body)

    def clone(self):
        return Function(
            self.name,
            list(self.scalar_params),
            {k: v for k, v in self.arrays.items()},
            [s.clone() for s in self.body],
            dict(self.pragmas),
            dict(self.intrinsics),
        )

    def __repr__(self):
        return "Function(%s, %d arrays, %d stmts)" % (
            self.name,
            len(self.arrays),
            sum(1 for _ in self.all_stmts()),
        )


class QueueSpec:
    """A hardware queue connecting a producer to a consumer.

    ``producer``/``consumer`` are endpoint descriptors: ``("stage", i)`` or
    ``("ra", j)``. ``label`` records what value stream flows through it,
    which makes printed pipelines legible.
    """

    __slots__ = ("qid", "capacity", "producer", "consumer", "label")

    def __init__(self, qid, producer, consumer, capacity=24, label=""):
        self.qid = qid
        self.producer = producer
        self.consumer = consumer
        self.capacity = capacity
        self.label = label

    def __repr__(self):
        return "Queue(%d, %s -> %s%s)" % (
            self.qid,
            self.producer,
            self.consumer,
            ", %s" % self.label if self.label else "",
        )


#: Reference accelerator access modes (Pipette Table I).
RA_INDIRECT = "indirect"
RA_SCAN = "scan"


class RASpec:
    """A reference accelerator configuration.

    In INDIRECT mode each input value is an index into ``array``; in SCAN
    mode input values arrive in (start, end) pairs and the RA streams
    ``array[start:end]``. The RA dequeues from ``in_queue`` and enqueues
    loaded elements to ``out_queue``; chaining is expressed by pointing one
    RA's ``out_queue`` at another RA's ``in_queue``.

    ``forward_ctrl`` makes the RA pass control values through unchanged so
    end-of-stream markers survive offloading.
    """

    __slots__ = ("raid", "mode", "array", "in_queue", "out_queue", "forward_ctrl")

    def __init__(self, raid, mode, array, in_queue, out_queue, forward_ctrl=True):
        if mode not in (RA_INDIRECT, RA_SCAN):
            raise ValueError("unknown RA mode %r" % (mode,))
        self.raid = raid
        self.mode = mode
        self.array = array
        self.in_queue = in_queue
        self.out_queue = out_queue
        self.forward_ctrl = forward_ctrl

    def __repr__(self):
        return "RA(%d, %s %s, q%d -> q%d)" % (
            self.raid,
            self.mode,
            self.array,
            self.in_queue,
            self.out_queue,
        )


class StageProgram:
    """One pipeline stage: a body plus its control-value handlers.

    ``handlers`` maps queue id -> handler body, mirroring Pipette's
    ``setup_control_value_handler``. A handler body executes whenever a
    dequeue on that queue is about to return a control value; the special
    register ``%ctrl`` holds the control value inside the handler. A
    ``Break(n)`` ending a handler breaks out of ``n`` loops enclosing the
    dequeue; falling off the end retries the dequeue.
    """

    def __init__(self, index, name, body, handlers=None):
        self.index = index
        self.name = name
        self.body = body
        self.handlers = dict(handlers or {})

    def all_stmts(self):
        for stmt in walk(self.body):
            yield stmt
        for handler in self.handlers.values():
            for stmt in walk(handler):
                yield stmt

    def clone(self):
        return StageProgram(
            self.index,
            self.name,
            [s.clone() for s in self.body],
            {q: [s.clone() for s in body] for q, body in self.handlers.items()},
        )

    def __repr__(self):
        return "Stage(%d:%s)" % (self.index, self.name)


class PipelineProgram:
    """A complete pipeline: stages, queues, RAs, and shared state.

    This is the compiler's output and the simulator's input. ``meta`` records
    provenance (selected decoupling points, which passes ran) for the
    evaluation harness and for debugging.
    """

    def __init__(
        self,
        name,
        stages,
        queues,
        ras,
        arrays,
        scalar_params,
        shared_vars=None,
        intrinsics=None,
        meta=None,
    ):
        self.name = name
        self.stages = list(stages)
        self.queues = {q.qid: q for q in queues}
        self.ras = list(ras)
        self.arrays = dict(arrays)
        self.scalar_params = list(scalar_params)
        self.shared_vars = set(shared_vars or ())
        self.intrinsics = dict(intrinsics or {})
        self.meta = dict(meta or {})

    @property
    def num_stages(self):
        return len(self.stages)

    @property
    def num_units(self):
        """Stage count including RAs — the x-axis of the paper's Fig. 13."""
        return len(self.stages) + len(self.ras)

    def queue_ids(self):
        return sorted(self.queues)

    def clone(self):
        return PipelineProgram(
            self.name,
            [s.clone() for s in self.stages],
            [QueueSpec(q.qid, q.producer, q.consumer, q.capacity, q.label) for q in self.queues.values()],
            [RASpec(r.raid, r.mode, r.array, r.in_queue, r.out_queue, r.forward_ctrl) for r in self.ras],
            dict(self.arrays),
            list(self.scalar_params),
            set(self.shared_vars),
            dict(self.intrinsics),
            dict(self.meta),
        )

    def __repr__(self):
        return "Pipeline(%s: %d stages, %d queues, %d RAs)" % (
            self.name,
            len(self.stages),
            len(self.queues),
            len(self.ras),
        )


def serial_pipeline(function, name=None):
    """Wrap a serial Function as a single-stage pipeline.

    The simulator only runs pipelines; this is how serial baselines (and the
    per-thread bodies of data-parallel baselines) enter it.
    """
    stage = StageProgram(0, function.name, [s.clone() for s in function.body])
    return PipelineProgram(
        name or function.name,
        [stage],
        [],
        [],
        function.arrays,
        function.scalar_params,
        shared_vars=(),
        intrinsics=function.intrinsics,
        meta={"serial": True},
    )
