"""The static cost model that ranks decoupling points (paper Sec. V).

Each candidate is a *group* of one or more loads (nearby accesses like
``nodes[v]``/``nodes[v+1]`` merge into one point, biased "to happen
together, rather than in two separate stages"). A candidate's score is
``predicted_cost x frequency``:

* cost comes from the access kind — indirect accesses are expensive,
  streaming scans are cheap (the prefetcher mostly covers them), and the
  second member of a group is almost free (it hits the same line);
* frequency weights inner loops exponentially higher, so the access to
  ``g->edges`` outranks ``g->nodes`` exactly as the paper describes.

``#pragma decouple`` hints force a point to the top of the ranking.
"""

from __future__ import annotations

from typing import Any

from ..frontend.pragmas import DECOUPLE_MARK
from ..ir.stmts import walk
from .access import INDIRECT, OTHER, SEQUENTIAL, AccessInfo, classify_loads
from .alias import AliasInfo
from .loops import estimated_trip_weight

#: Predicted per-access cost by kind (arbitrary units; only ranking matters).
KIND_COST = {
    INDIRECT: 48.0,
    OTHER: 16.0,
    SEQUENTIAL: 3.0,
}

#: Extra cost per level of indirection feeding the address.
CHAIN_COST = 12.0

#: Cost of a grouped (adjacent) second access: almost surely a cache hit.
ADJACENT_COST = 1.0

#: Score assigned to `#pragma decouple`-hinted points.
HINT_SCORE = float("inf")


class DecouplePoint:
    """A ranked candidate: split the program at this load group."""

    __slots__ = ("loads", "cls", "kind", "depth", "score", "value_mode", "hinted")

    def __init__(
        self,
        loads: list[Any],
        cls: Any,
        kind: str,
        depth: int,
        score: float,
        value_mode: bool,
        hinted: bool = False,
    ) -> None:
        self.loads = loads  # Load stmts, program order
        self.cls = cls
        self.kind = kind
        self.depth = depth
        self.score = score
        #: True: the producer performs the load and forwards the *value*
        #: (read-only class). False: the class is written somewhere, so the
        #: producer may only prefetch and forward the *index*.
        self.value_mode = value_mode
        self.hinted = hinted

    def __repr__(self) -> str:
        return "DecouplePoint(%s x%d, %s, depth %d, score %.3g%s)" % (
            self.cls,
            len(self.loads),
            self.kind,
            self.depth,
            self.score,
            ", hinted" if self.hinted else "",
        )


def _hinted_load_ids(body: Any) -> set[int]:
    """Loads immediately following a ``#pragma decouple`` marker."""
    hinted = set()
    pending = False
    for stmt in walk(body):
        if stmt.kind == "comment" and stmt.text == DECOUPLE_MARK:
            pending = True
        elif pending and stmt.kind == "load":
            hinted.add(id(stmt))
            pending = False
    return hinted


def rank_decouple_points(function: Any) -> list[DecouplePoint]:
    """Rank all candidate decoupling points, best first."""
    infos = classify_loads(function.body)
    alias = AliasInfo(function.body)
    hinted = _hinted_load_ids(function.body)

    # Group adjacent accesses: same class, same affine root, small offset
    # delta, same loop depth.
    groups: list[list[AccessInfo]] = []
    by_key: dict[tuple[Any, str, int], list[AccessInfo]] = {}
    for info in infos:
        key = None
        if type(info.root) is str:
            key = (info.cls, info.root, info.depth)
        if key is not None and key in by_key:
            leader = by_key[key]
            if abs(info.offset - leader[0].offset) <= 2:
                leader.append(info)
                continue
        group = [info]
        groups.append(group)
        if key is not None:
            by_key[key] = group

    points = []
    for group in groups:
        lead = group[0]
        cost = KIND_COST[lead.kind] + CHAIN_COST * lead.indirection
        cost += ADJACENT_COST * (len(group) - 1)
        weight = estimated_trip_weight(lead.depth)
        score = cost * weight
        is_hinted = any(id(info.stmt) in hinted for info in group)
        if is_hinted:
            score = HINT_SCORE
        points.append(
            DecouplePoint(
                [info.stmt for info in group],
                lead.cls,
                lead.kind,
                lead.depth,
                score,
                value_mode=alias.value_forwarding_legal(lead.cls),
                hinted=is_hinted,
            )
        )

    points.sort(key=lambda p: (-p.score, p.depth))
    return points
