"""Telemetry counters, latency histograms, and the Prometheus round trip."""

import json

from repro.service import (
    LATENCY_BUCKETS_S,
    TELEMETRY_SCHEMA,
    TELEMETRY_VERSION,
    LatencyHistogram,
    ServiceTelemetry,
    parse_prometheus,
    render_prometheus,
)


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestLatencyHistogram:
    def test_buckets_are_fixed_log_scale(self):
        assert LATENCY_BUCKETS_S[0] == 0.001
        assert LATENCY_BUCKETS_S[-1] == 60.0
        assert list(LATENCY_BUCKETS_S) == sorted(LATENCY_BUCKETS_S)

    def test_observation_lands_in_first_fitting_bucket(self):
        hist = LatencyHistogram()
        hist.observe(0.0015)  # > 1ms, <= 2ms
        assert hist.counts[LATENCY_BUCKETS_S.index(0.002)] == 1
        hist.observe(0.001)  # boundary values are inclusive (le semantics)
        assert hist.counts[LATENCY_BUCKETS_S.index(0.001)] == 1

    def test_overflow_lands_in_inf_bucket(self):
        hist = LatencyHistogram()
        hist.observe(3600.0)
        assert hist.counts[-1] == 1
        assert hist.snapshot()["buckets"][-1] == {"le": "+Inf", "count": 1}

    def test_negative_observation_clamped_to_zero(self):
        hist = LatencyHistogram()
        hist.observe(-5.0)
        assert hist.counts[0] == 1
        assert hist.total_s == 0.0

    def test_snapshot_buckets_are_cumulative(self):
        hist = LatencyHistogram()
        for seconds in (0.0005, 0.003, 0.003, 0.3):
            hist.observe(seconds)
        snapshot = hist.snapshot()
        counts = [b["count"] for b in snapshot["buckets"]]
        assert counts == sorted(counts), "le buckets must be monotone"
        assert snapshot["buckets"][-1]["count"] == 4
        assert snapshot["count"] == 4
        assert snapshot["sum_s"] == round(0.0005 + 0.003 + 0.003 + 0.3, 6)

    def test_quantiles_are_bucket_bounds(self):
        hist = LatencyHistogram()
        for _ in range(99):
            hist.observe(0.008)  # -> 0.01 bucket
        hist.observe(4.0)  # -> 5.0 bucket
        snapshot = hist.snapshot()
        assert snapshot["p50_s"] == 0.01
        assert snapshot["p90_s"] == 0.01
        assert snapshot["p99_s"] == 0.01
        assert hist.quantile(1.0) == 5.0

    def test_empty_histogram_quantile_is_zero(self):
        assert LatencyHistogram().quantile(0.5) == 0.0


class TestServiceTelemetry:
    def test_begin_finish_counts_and_measures(self):
        clock = FakeClock()
        telemetry = ServiceTelemetry(clock=clock)
        started = telemetry.begin("metrics")
        assert telemetry.in_flight == 1
        clock.advance(0.05)
        telemetry.finish("metrics", started)
        assert telemetry.in_flight == 0
        row = telemetry.snapshot()["verbs"]["metrics"]
        assert row["requests"] == 1
        assert row["outcomes"] == {"completed": 1, "failed": 0, "rejected": 0}
        assert row["latency"]["count"] == 1
        assert row["latency"]["sum_s"] == 0.05

    def test_failed_outcome_recorded(self):
        clock = FakeClock()
        telemetry = ServiceTelemetry(clock=clock)
        telemetry.finish("emit", telemetry.begin("emit"), failed=True)
        outcomes = telemetry.snapshot()["verbs"]["emit"]["outcomes"]
        assert outcomes["failed"] == 1 and outcomes["completed"] == 0

    def test_rejection_counts_by_code(self):
        telemetry = ServiceTelemetry(clock=FakeClock())
        telemetry.rejected("demo", "rate-limited")
        telemetry.rejected("demo", "rate-limited")
        telemetry.rejected("emit", "quota-exceeded")
        snapshot = telemetry.snapshot()
        assert snapshot["rejections"] == {"quota-exceeded": 1, "rate-limited": 2}
        assert snapshot["verbs"]["demo"]["outcomes"]["rejected"] == 2
        # Rejected requests never open a latency window.
        assert snapshot["verbs"]["demo"]["latency"]["count"] == 0

    def test_in_flight_peak_is_high_water_mark(self):
        clock = FakeClock()
        telemetry = ServiceTelemetry(clock=clock)
        a = telemetry.begin("demo")
        b = telemetry.begin("demo")
        telemetry.finish("demo", a)
        telemetry.finish("demo", b)
        snapshot = telemetry.snapshot()
        assert snapshot["in_flight"] == 0
        assert snapshot["in_flight_peak"] == 2

    def test_uptime_tracks_injected_clock(self):
        clock = FakeClock()
        telemetry = ServiceTelemetry(clock=clock)
        clock.advance(12.5)
        assert telemetry.snapshot()["uptime_s"] == 12.5

    def test_cache_deltas_fold_into_totals(self):
        telemetry = ServiceTelemetry(clock=FakeClock())
        telemetry.cache_delta({"pipeline": {"hits": 1, "misses": 1}})
        telemetry.cache_delta({"pipeline": {"hits": 3, "misses": 0}})
        telemetry.cache_delta(None)  # requests without a delta are fine
        cache = telemetry.snapshot()["cache"]
        assert cache["pipeline"] == {"hits": 4, "misses": 1, "hit_rate": 0.8}

    def test_snapshot_is_schema_stamped_and_json_clean(self):
        telemetry = ServiceTelemetry(clock=FakeClock())
        telemetry.finish("metrics", telemetry.begin("metrics"))
        snapshot = telemetry.snapshot()
        assert snapshot["schema"] == TELEMETRY_SCHEMA
        assert snapshot["version"] == TELEMETRY_VERSION
        json.dumps(snapshot)  # must serialize as-is


class TestPrometheus:
    def _snapshot(self):
        clock = FakeClock()
        telemetry = ServiceTelemetry(clock=clock)
        started = telemetry.begin("metrics")
        clock.advance(0.03)
        telemetry.finish("metrics", started)
        telemetry.finish("emit", telemetry.begin("emit"), failed=True)
        telemetry.rejected("demo", "rate-limited")
        telemetry.cache_delta({"pipeline": {"hits": 2, "misses": 1}})
        return telemetry.snapshot()

    def test_round_trips_through_parser(self):
        snapshot = self._snapshot()
        samples = parse_prometheus(render_prometheus(snapshot))
        assert samples[("repro_uptime_seconds", ())] == snapshot["uptime_s"]
        assert samples[
            ("repro_requests_total", (("outcome", "completed"), ("verb", "metrics")))
        ] == 1
        assert samples[
            ("repro_requests_total", (("outcome", "failed"), ("verb", "emit")))
        ] == 1
        assert samples[("repro_rejected_total", (("code", "rate-limited"),))] == 1
        assert samples[
            ("repro_request_latency_seconds_count", (("verb", "metrics"),))
        ] == 1
        assert samples[
            ("repro_request_latency_seconds_bucket", (("le", "+Inf"), ("verb", "metrics")))
        ] == 1
        assert samples[
            ("repro_cache_requests_total", (("layer", "pipeline"), ("result", "hit")))
        ] == 2

    def test_histogram_buckets_cover_every_bound(self):
        samples = parse_prometheus(render_prometheus(self._snapshot()))
        bounds = {
            labels[0][1]
            for (name, labels) in samples
            if name == "repro_request_latency_seconds_bucket"
            and dict(labels)["verb"] == "metrics"
        }
        assert "+Inf" in bounds
        assert len(bounds) == len(LATENCY_BUCKETS_S) + 1

    def test_render_is_deterministic(self):
        snapshot = self._snapshot()
        assert render_prometheus(snapshot) == render_prometheus(snapshot)
        # And stable across a JSON round trip of the snapshot itself.
        assert render_prometheus(json.loads(json.dumps(snapshot))) == render_prometheus(
            snapshot
        )

    def test_help_and_type_lines_present(self):
        text = render_prometheus(self._snapshot())
        assert "# HELP repro_request_latency_seconds " in text
        assert "# TYPE repro_request_latency_seconds histogram" in text
        assert "# TYPE repro_requests_total counter" in text
