"""ASCII renderers."""

from repro.bench import report


def test_render_table_aligns():
    text = report.render_table("T", ["a", "longer"], [["x", 1.5], ["yy", 2.25]])
    lines = text.splitlines()
    assert "== T ==" in lines[1]
    assert "1.50" in text and "2.25" in text


def test_render_speedups():
    table = {"bfs": {"serial": 1.0, "phloem": 4.5}, "cc": {"serial": 1.0, "phloem": 3.0}}
    text = report.render_speedups("S", table)
    assert "bfs" in text and "phloem" in text and "4.50" in text


def test_render_stacked_totals():
    table = {"bfs": {"serial": {"issue": 0.25, "backend": 0.75}}}
    text = report.render_stacked("B", table, ["issue", "backend"])
    assert "1.00" in text  # total column


def test_render_distribution():
    dist = {"bfs": {3: [1.0, 2.0, 3.0], 5: [2.5]}}
    text = report.render_distribution("D", dist)
    assert "bfs" in text
    assert "2.00" in text  # median of the 3-unit bucket
