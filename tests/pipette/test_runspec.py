"""RunSpec placement and SimResult surface."""

from repro import ir
from repro.pipette import Machine, MachineConfig, RunSpec


def test_core_of_stage_uniform_and_explicit():
    pipe = ir.PipelineProgram("t", [], [], [], {}, [])
    spec = RunSpec(pipe, {}, {}, core=2)
    assert spec.core_of_stage(0) == 2
    spec = RunSpec(pipe, {}, {}, stage_cores=[0, 1, 3])
    assert spec.core_of_stage(2) == 3


def test_simresult_surface():
    b = ir.IRBuilder()
    b.store("@out", 0, 7)
    stage = ir.StageProgram(0, "w", b.finish())
    pipe = ir.PipelineProgram("t", [stage], [], [], {"out": ir.ArrayDecl("out")}, [])
    result = Machine(MachineConfig()).run(RunSpec(pipe, {"out": [0]}, {}))
    assert result.arrays()["out"] == [7]
    assert "cycles" in repr(result)
    assert result.stats.wall_cycles == result.cycles


def test_extra_scalars_tolerated():
    """Bindings may carry extra scalars (replication envs do)."""
    b = ir.IRBuilder()
    b.store("@out", 0, "n")
    stage = ir.StageProgram(0, "w", b.finish())
    pipe = ir.PipelineProgram("t", [stage], [], [], {"out": ir.ArrayDecl("out")}, ["n"])
    result = Machine(MachineConfig()).run(
        RunSpec(pipe, {"out": [0]}, {"n": 5, "unused": 9})
    )
    assert result.arrays()["out"] == [5]
