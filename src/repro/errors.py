"""Exception hierarchy for the Phloem reproduction.

Every error raised by this package derives from :class:`PhloemError`, so
callers can catch one type to handle any failure in the toolchain.
"""


class PhloemError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ParseError(PhloemError):
    """Raised by the mini-C frontend on malformed source.

    Carries the source line/column when known, formatted into the message.
    """

    def __init__(self, message, line=None, col=None):
        self.line = line
        self.col = col
        if line is not None:
            message = "line %d:%d: %s" % (line, col if col is not None else 0, message)
        super().__init__(message)


class LoweringError(PhloemError):
    """Raised when a parsed AST cannot be lowered to Phloem IR."""


class IRVerificationError(PhloemError):
    """Raised by the IR verifier when a program violates a structural invariant."""


class CompileError(PhloemError):
    """Raised by the Phloem compiler passes on an untransformable program."""


class AliasError(CompileError):
    """Raised when a requested decoupling would violate the aliasing rules.

    Mirrors the paper's Sec. IV-A rule: reads and writes to the same data
    structure (or through pointers that may alias) must stay in one stage.
    """


class SimulationError(PhloemError):
    """Raised by the Pipette simulator on an inconsistent machine state."""


class DeadlockError(SimulationError):
    """Raised when every thread in a simulation is blocked.

    The message lists each thread and the queue it is blocked on, which is
    the first thing one needs when debugging a miscompiled pipeline.
    """


class ResourceError(SimulationError):
    """Raised when a pipeline exceeds the machine's resources.

    For example, requesting more queues than the 16 the Pipette
    configuration provides, or more reference accelerators than exist.
    """
