"""Fast-path execution engine: per-stage closure compilation.

The reference interpreter (:mod:`repro.pipette.interp`) walks each stage's
region tree statement-by-statement, re-dispatching on ``stmt.kind`` and
re-resolving operands on every execution. That dynamic dispatch is the hot
path under every figure, autotune candidate, and cache-miss compile.

This module removes it: at :class:`~repro.pipette.machine.Machine` setup
time, :class:`FastStageInterp` walks the region tree *once* and emits one
specialized Python closure per statement — operand accessors resolved
(constant vs register vs array binding), op handlers bound, branch PCs and
op latencies baked in. The hot statement kinds additionally inline the
timing primitives a statement execution would otherwise call out to:

* the issue-ledger ``acquire`` loop (shared slot dict, exact same keys),
* the in-order ROB ``retire`` and MSHR bookkeeping,
* the full L1 lookup of :meth:`MemorySystem.access` (MRU compare, LRU
  reorder, tag install), including the stride-prefetcher observation that
  runs on every load; only the below-L1 miss walk stays a call.

Closures compose under a three-mode protocol, tagged per step:

* ``PLAIN`` — a plain call; the statement can never block. Returns ``None``
  or a ``('break', n)`` / ``('continue', 1)`` control signal.
* ``MAYBE`` — a plain call for the overwhelmingly common non-blocking case;
  if the operation must block (queue full/empty), it returns a *generator
  continuation* instead, which the nearest enclosing generator drives with
  ``yield from``. Queue operations block on a tiny fraction of executions,
  so this removes a generator allocation per enqueue/dequeue.
* ``GEN`` — always a generator (barriers, distributed enqueues).

A body whose statements are all ``PLAIN`` is itself ``PLAIN``, so loop
iterations of straight-line code run without any generator machinery at
all; a body with ``MAYBE`` children is ``MAYBE`` (it propagates the
continuation outward); only ``GEN`` children force a generator body.

The fast path is **bit-identical** to the reference interpreter: every
closure replays the interpreter's timing arithmetic in the same order on
the same shared structures (issue ledgers, ROB/MSHR deques, queues, the
gshare predictor, cache tag state, DRAM windows), so every
:class:`SimStats` field — and any attached trace — matches exactly. The
interpreter stays available as the conformance oracle behind
``REPRO_SLOWPATH=1`` or ``CompileOptions(fastpath=False)``; the
differential suite in ``tests/pipette/test_fastpath.py`` holds the two to
byte equality.
"""

import os

from ..errors import SimulationError
from ..ir.ops import TERNARY_OPS, _PYTHON_BINARY, _PYTHON_UNARY
from ..ir.values import Ctrl, is_control
from .interp import _HALT, _assign_pcs
from .sched import BLOCKED

#: Environment switch: force every run through the reference interpreter.
SLOWPATH_ENV = "REPRO_SLOWPATH"

#: Step modes (see module docstring).
PLAIN, MAYBE, GEN = 0, 1, 2

#: Bodies up to this many statements get a generated unrolled dispatcher;
#: longer bodies fall back to the generic driver loops in ``_compile_body``.
_UNROLL_MAX = 16

# Unrolled body dispatchers, generated once per (length, mode-shape) and
# cached module-wide. A multi-statement body otherwise pays a Python-level
# loop (tuple unpack, index bookkeeping, per-step mode test) for every
# execution; the generated form is the same chain of "call step, check
# signal" blocks a hand-written specialization would contain, with each
# step's mode resolved at generation time instead of per run. The step
# functions are closure cells of the generated maker (LOAD_DEREF), not
# globals of the exec namespace.
_plain_makers = {}
_maybe_makers = {}
_gen_makers = {}


def _plain_maker(n):
    """Maker for an n-statement all-PLAIN body: (f0..fn-1) -> run()."""
    maker = _plain_makers.get(n)
    if maker is None:
        args = ", ".join("f%d" % i for i in range(n))
        lines = ["def _make(%s):" % args, "    def run_plain_u():"]
        for i in range(n - 1):
            lines.append("        signal = f%d()" % i)
            lines.append("        if signal is not None:")
            lines.append("            return signal")
        lines.append("        return f%d()" % (n - 1))
        lines.append("    return run_plain_u")
        namespace = {}
        exec("\n".join(lines), namespace)
        maker = _plain_makers[n] = namespace["_make"]
    return maker


def _maybe_maker(modes):
    """Maker for a top-mode-MAYBE body: (resume, f0..fn-1) -> run().

    ``modes`` is the per-statement mode tuple; MAYBE steps get the
    continuation check (non-tuple signal -> hand ``resume(cont, i)`` to the
    enclosing generator), PLAIN steps just propagate their signal.
    """
    maker = _maybe_makers.get(modes)
    if maker is None:
        args = ", ".join("f%d" % i for i in range(len(modes)))
        lines = ["def _make(resume, %s):" % args, "    def run_maybe_u():"]
        for i, mode in enumerate(modes):
            lines.append("        signal = f%d()" % i)
            lines.append("        if signal is not None:")
            if mode == MAYBE:
                lines.append("            if type(signal) is not tuple:")
                lines.append("                return resume(signal, %d)" % i)
            lines.append("            return signal")
        lines.append("        return None")
        lines.append("    return run_maybe_u")
        namespace = {}
        exec("\n".join(lines), namespace)
        maker = _maybe_makers[modes] = namespace["_make"]
    return maker


def _gen_maker(modes):
    """Maker for a top-mode-GEN body: (f0..fn-1) -> generator function."""
    maker = _gen_makers.get(modes)
    if maker is None:
        args = ", ".join("f%d" % i for i in range(len(modes)))
        lines = ["def _make(%s):" % args, "    def run_gen_u():"]
        for i, mode in enumerate(modes):
            if mode == GEN:
                lines.append("        signal = yield from f%d()" % i)
                lines.append("        if signal is not None:")
                lines.append("            return signal")
            elif mode == MAYBE:
                lines.append("        signal = f%d()" % i)
                lines.append("        if signal is not None:")
                lines.append("            if type(signal) is not tuple:")
                lines.append("                signal = yield from signal")
                lines.append("                if signal is not None:")
                lines.append("                    return signal")
                lines.append("            else:")
                lines.append("                return signal")
            else:
                lines.append("        signal = f%d()" % i)
                lines.append("        if signal is not None:")
                lines.append("            return signal")
        lines.append("        return None")
        lines.append("    return run_gen_u")
        namespace = {}
        exec("\n".join(lines), namespace)
        maker = _gen_makers[modes] = namespace["_make"]
    return maker


def fastpath_enabled(pipeline):
    """Whether ``pipeline`` should run on the fast path (default: yes)."""
    if os.environ.get(SLOWPATH_ENV):
        return False
    return bool(pipeline.meta.get("fastpath", True))


def resolve_fastpath(pipeline, override=None):
    """Pick the execution engine for one pipeline.

    ``REPRO_SLOWPATH`` is a global kill-switch (it wins even over an explicit
    ``override=True`` so the oracle can always be forced from the outside);
    next an explicit per-run ``override``; finally the pipeline's compiled-in
    ``meta["fastpath"]`` preference (default: fast).
    """
    if os.environ.get(SLOWPATH_ENV):
        return False
    if override is not None:
        return bool(override)
    return bool(pipeline.meta.get("fastpath", True))


#: The three execution engines, slowest (oracle) first.
ENGINES = ("reference", "fastpath", "batch")

#: Environment default for runs that pass no explicit engine. Deliberately
#: *below* explicit arguments in priority (unlike ``REPRO_SLOWPATH``, which
#: is a kill-switch that beats everything): CI sets REPRO_ENGINE per matrix
#: leg, and the differential tests inside a leg must still be able to pin
#: each engine explicitly without the environment leaking into the oracle
#: side of the comparison.
ENGINE_ENV = "REPRO_ENGINE"


def resolve_engine(pipeline, engine=None, fastpath=None):
    """Pick one of :data:`ENGINES` for ``pipeline``.

    Priority: ``REPRO_SLOWPATH`` (global oracle kill-switch) > explicit
    ``engine`` > explicit legacy ``fastpath`` boolean > ``REPRO_ENGINE`` >
    compiled-in ``meta["engine"]`` > ``meta["fastpath"]`` (default: the
    fast path).
    """
    if os.environ.get(SLOWPATH_ENV):
        return "reference"
    candidates = (
        engine,
        None if fastpath is None else ("fastpath" if fastpath else "reference"),
        os.environ.get(ENGINE_ENV) or None,
        pipeline.meta.get("engine"),
        None if pipeline.meta.get("fastpath", True) else "reference",
    )
    for choice in candidates:
        if choice is None:
            continue
        if choice not in ENGINES:
            raise ValueError(
                "unknown engine %r (expected one of %s)" % (choice, ", ".join(ENGINES))
            )
        return choice
    return "fastpath"


def _is_reg(operand):
    return type(operand) is str and not operand.startswith("@")


class FastStageInterp:
    """Drop-in replacement for :class:`~repro.pipette.interp.StageInterp`.

    Construction compiles the stage; :meth:`run` returns the generator the
    scheduler drives. The public surface (``stage``/``ctx``/``env``
    attributes, ``run()``) matches ``StageInterp`` so the machine, the
    run-env callbacks (``queue_of``, ``remote_queue``), and the deadlock
    reporter are oblivious to which engine a thread runs on.
    """

    def __init__(self, stage, ctx, runenv):
        self.stage = stage
        self.ctx = ctx
        self.env = runenv
        self.handlers = stage.handlers
        self.pcs = _assign_pcs(stage)
        # Hot references, resolved once per thread instead of per statement.
        # Cold statement kinds call these bound methods; hot kinds inline
        # the same logic (see the per-kind compilers below).
        self._acquire = ctx.ledger.acquire
        self._retire = ctx.retire
        self._mshr_claim = ctx.mshr_claim
        self._mem_access = ctx.mem.access
        self._predict = ctx.pred.predict_and_update
        self._tracer = ctx.tracer
        self._tname = ctx.stats.name
        self._penalty = ctx.config.mispredict_penalty
        # Control-value handlers compile first into a dict the deq closures
        # read at run time (a handler may dequeue a queue whose handler is
        # compiled later — or its own — so compile-time wiring would knot).
        self._chandlers = {}
        for qid in sorted(stage.handlers):
            self._chandlers[qid] = self._compile_body(stage.handlers[qid])
        self._body = self._compile_body(stage.body)

    # -- operand accessors --------------------------------------------------

    def _val_getter(self, operand):
        """() -> runtime value, mirroring ``StageInterp.val``."""
        if _is_reg(operand):
            regs = self.ctx.regs
            return lambda: regs[operand]
        return lambda: operand  # constant or "@array" handle

    def _reader(self, operand):
        """``(reg_name, constant)`` split of an operand, for inline reads.

        Exactly one side is live: hot closures do ``regs[name] if name is
        not None else constant`` instead of paying a getter-lambda call.
        The register name doubles as the operand's ready-time key;
        ``@array`` handles and constants never appear as ``ready`` keys, so
        their ``ready.get(..., 0.0)`` in the interpreter is always 0.0 and
        they drop out of dependence computation outright.
        """
        if _is_reg(operand):
            return operand, None
        return None, operand

    def _ready_name(self, operand):
        """Register name whose ready time gates ``operand``, or None."""
        return operand if _is_reg(operand) else None

    def _static_binding(self, operand):
        """The ArrayBinding for a literal ``@name`` operand, else None."""
        if type(operand) is str and operand.startswith("@"):
            binding = self.env.arrays.get(operand[1:])
            if binding is None:
                raise SimulationError("unbound array %s" % operand)
            return binding
        return None

    def _binding_getter(self, operand):
        """() -> ArrayBinding, mirroring ``StageInterp.array_binding``."""
        binding = self._static_binding(operand)
        if binding is not None:
            return lambda: binding
        regs = self.ctx.regs
        arrays = self.env.arrays

        def resolve():
            name = regs[operand]  # pointer register holds a handle
            if not isinstance(name, str) or not name.startswith("@"):
                raise SimulationError(
                    "register %r used as pointer holds %r" % (operand, name)
                )
            found = arrays.get(name[1:])
            if found is None:
                raise SimulationError("unbound array %s" % name)
            return found

        return resolve

    # -- body composition ---------------------------------------------------

    def _compile_body(self, body):
        """Compile a statement list into ``(mode, fn)``.

        ``fn`` follows the mode protocol from the module docstring; it
        reports ``None`` (normal completion) or a ``('break', n)`` /
        ``('continue', 1)`` signal, exactly like the interpreter's
        ``exec_body`` — via the return value for PLAIN/GEN, and for MAYBE
        either directly or as the result of the returned continuation.
        """
        steps = []
        for stmt in body:
            compiled = self._compile_stmt(stmt)
            if compiled is not None:  # comments vanish at compile time
                steps.append(compiled)
        if not steps:
            return (PLAIN, None)
        if len(steps) == 1:
            return steps[0]
        top = max(mode for mode, _ in steps)
        if top == PLAIN:
            fns = tuple(fn for _, fn in steps)
            if len(fns) <= _UNROLL_MAX:
                return (PLAIN, _plain_maker(len(fns))(*fns))

            def run_plain():
                for fn in fns:
                    signal = fn()
                    if signal is not None:
                        return signal
                return None

            return (PLAIN, run_plain)
        seq = tuple(steps)
        if top == MAYBE:

            def resume(cont, at):
                """Finish the blocked step ``at``, then run the tail."""
                signal = yield from cont
                if signal is not None:
                    return signal
                for mode, fn in seq[at + 1:]:
                    signal = fn()
                    if signal is not None:
                        if mode == MAYBE and type(signal) is not tuple:
                            signal = yield from signal
                            if signal is not None:
                                return signal
                        else:
                            return signal
                return None

            if len(seq) <= _UNROLL_MAX:
                modes = tuple(mode for mode, _ in seq)
                fns = tuple(fn for _, fn in seq)
                return (MAYBE, _maybe_maker(modes)(resume, *fns))

            def run_maybe():
                at = 0
                for mode, fn in seq:
                    signal = fn()
                    if signal is not None:
                        if mode == MAYBE and type(signal) is not tuple:
                            return resume(signal, at)
                        return signal
                    at += 1
                return None

            return (MAYBE, run_maybe)

        if len(seq) <= _UNROLL_MAX:
            modes = tuple(mode for mode, _ in seq)
            fns = tuple(fn for _, fn in seq)
            return (GEN, _gen_maker(modes)(*fns))

        def run_gen():
            for mode, fn in seq:
                if mode == GEN:
                    signal = yield from fn()
                else:
                    signal = fn()
                    if signal is not None and mode == MAYBE and type(signal) is not tuple:
                        signal = yield from signal
                if signal is not None:
                    return signal
            return None

        return (GEN, run_gen)

    def _compile_stmt(self, stmt):
        kind = stmt.kind
        method = getattr(self, "_compile_" + kind, None)
        if method is None:
            raise SimulationError("unknown statement kind %r" % kind)
        return method(stmt)

    # -- straight-line statements (hot: inlined timing primitives) ----------
    #
    # Each hot closure repeats three inline blocks, kept textually identical
    # so they can be audited against their sources:
    #   acquire —  IssueLedger.acquire (sched.py) + the cursor/uops update
    #              of ThreadCtx.issue (interp.py)
    #   retire  —  ThreadCtx.retire (interp.py)
    #   mshr    —  ThreadCtx.mshr_claim (interp.py)

    def _compile_assign(self, stmt):
        ctx = self.ctx
        regs, ready = ctx.regs, ctx.ready
        tstats = ctx.stats
        ledger = ctx.ledger
        width = ledger.width
        rob, rob_size = ctx.rob, ctx.rob_size
        tracer, tname = self._tracer, self._tname
        dst = stmt.dst
        latency = ctx.config.op_latency(stmt.op)
        args = stmt.args
        rnames = tuple(a for a in args if _is_reg(a))
        ready_get = ready.get
        op = stmt.op

        def finish(value, dep):
            """Shared issue/retire tail once operands are evaluated."""
            # acquire
            t = ctx.cursor
            c = int(t)
            if c < t:
                c += 1
            slots = ledger.slots
            n = slots.get(c, 0)
            while n >= width:
                c += 1
                n = slots.get(c, 0)
            slots[c] = n + 1
            t = float(c)
            ctx.cursor = t
            tstats.uops += 1
            start = t if t > dep else dep
            comp = start + latency
            regs[dst] = value
            ready[dst] = comp
            # retire
            r = comp
            last = ctx.rob_last
            if r < last:
                r = last
            ctx.rob_last = r
            if len(rob) >= rob_size:
                oldest = rob.popleft()
                cur = ctx.cursor
                if oldest > cur:
                    tstats.mem_stall += oldest - cur
                    if tracer is not None:
                        tracer.stall(tname, "mem", cur, oldest)
                    ctx.cursor = oldest
            rob.append(r)

        if op in _PYTHON_BINARY:
            opfn = _PYTHON_BINARY[op]
            r0, c0 = self._reader(args[0])
            r1, c1 = self._reader(args[1])
            if r0 is not None and r1 is not None:
                # The register/register binary op is the single most
                # frequent statement shape; the ``finish`` tail is inlined
                # here (and in the one-register shapes below) to drop the
                # per-execution call.

                def step():
                    dep = ready_get(r0, 0.0)
                    rt = ready_get(r1, 0.0)
                    value = opfn(regs[r0], regs[r1])
                    if rt > dep:
                        dep = rt
                    # acquire
                    t = ctx.cursor
                    c = int(t)
                    if c < t:
                        c += 1
                    slots = ledger.slots
                    n = slots.get(c, 0)
                    while n >= width:
                        c += 1
                        n = slots.get(c, 0)
                    slots[c] = n + 1
                    t = float(c)
                    ctx.cursor = t
                    tstats.uops += 1
                    comp = (t if t > dep else dep) + latency
                    regs[dst] = value
                    ready[dst] = comp
                    # retire
                    r = comp
                    last = ctx.rob_last
                    if r < last:
                        r = last
                    ctx.rob_last = r
                    if len(rob) >= rob_size:
                        oldest = rob.popleft()
                        cur = ctx.cursor
                        if oldest > cur:
                            tstats.mem_stall += oldest - cur
                            if tracer is not None:
                                tracer.stall(tname, "mem", cur, oldest)
                            ctx.cursor = oldest
                    rob.append(r)

                return (PLAIN, step)
            if r0 is not None or r1 is not None:
                rname = r0 if r0 is not None else r1
                reg_left = r0 is not None

                def step():
                    dep = ready_get(rname, 0.0)
                    value = opfn(regs[rname], c1) if reg_left else opfn(c0, regs[rname])
                    # acquire
                    t = ctx.cursor
                    c = int(t)
                    if c < t:
                        c += 1
                    slots = ledger.slots
                    n = slots.get(c, 0)
                    while n >= width:
                        c += 1
                        n = slots.get(c, 0)
                    slots[c] = n + 1
                    t = float(c)
                    ctx.cursor = t
                    tstats.uops += 1
                    comp = (t if t > dep else dep) + latency
                    regs[dst] = value
                    ready[dst] = comp
                    # retire
                    r = comp
                    last = ctx.rob_last
                    if r < last:
                        r = last
                    ctx.rob_last = r
                    if len(rob) >= rob_size:
                        oldest = rob.popleft()
                        cur = ctx.cursor
                        if oldest > cur:
                            tstats.mem_stall += oldest - cur
                            if tracer is not None:
                                tracer.stall(tname, "mem", cur, oldest)
                            ctx.cursor = oldest
                    rob.append(r)

                return (PLAIN, step)

            def step():
                finish(opfn(c0, c1), 0.0)

            return (PLAIN, step)
        if op not in TERNARY_OPS:
            opfn = _PYTHON_UNARY[op]
            r0, c0 = self._reader(args[0])
            if r0 is not None:

                def step():
                    dep = ready_get(r0, 0.0)
                    value = opfn(regs[r0])
                    # acquire
                    t = ctx.cursor
                    c = int(t)
                    if c < t:
                        c += 1
                    slots = ledger.slots
                    n = slots.get(c, 0)
                    while n >= width:
                        c += 1
                        n = slots.get(c, 0)
                    slots[c] = n + 1
                    t = float(c)
                    ctx.cursor = t
                    tstats.uops += 1
                    comp = (t if t > dep else dep) + latency
                    regs[dst] = value
                    ready[dst] = comp
                    # retire
                    r = comp
                    last = ctx.rob_last
                    if r < last:
                        r = last
                    ctx.rob_last = r
                    if len(rob) >= rob_size:
                        oldest = rob.popleft()
                        cur = ctx.cursor
                        if oldest > cur:
                            tstats.mem_stall += oldest - cur
                            if tracer is not None:
                                tracer.stall(tname, "mem", cur, oldest)
                            ctx.cursor = oldest
                    rob.append(r)

                return (PLAIN, step)

            def step():
                finish(opfn(c0), 0.0)

            return (PLAIN, step)

        # select (the only ternary) keeps generic getters; it is rare.
        g0, g1, g2 = [self._val_getter(a) for a in args]

        def compute():
            v0, v1, v2 = g0(), g1(), g2()
            return v1 if v0 else v2

        if len(rnames) == 0:

            def operand_dep():
                return 0.0

        elif len(rnames) == 1:
            (rn0,) = rnames

            def operand_dep():
                return ready_get(rn0, 0.0)

        elif len(rnames) == 2:
            rn0, rn1 = rnames

            def operand_dep():
                dep = ready_get(rn0, 0.0)
                r = ready_get(rn1, 0.0)
                return r if r > dep else dep

        else:

            def operand_dep():
                dep = 0.0
                for name in rnames:
                    r = ready_get(name, 0.0)
                    if r > dep:
                        dep = r
                return dep

        def step():
            value = compute()
            # acquire
            t = ctx.cursor
            c = int(t)
            if c < t:
                c += 1
            slots = ledger.slots
            n = slots.get(c, 0)
            while n >= width:
                c += 1
                n = slots.get(c, 0)
            slots[c] = n + 1
            t = float(c)
            ctx.cursor = t
            tstats.uops += 1
            dep = operand_dep()
            start = t if t > dep else dep
            comp = start + latency
            regs[dst] = value
            ready[dst] = comp
            # retire
            r = comp
            last = ctx.rob_last
            if r < last:
                r = last
            ctx.rob_last = r
            if len(rob) >= rob_size:
                oldest = rob.popleft()
                cur = ctx.cursor
                if oldest > cur:
                    tstats.mem_stall += oldest - cur
                    if tracer is not None:
                        tracer.stall(tname, "mem", cur, oldest)
                    ctx.cursor = oldest
            rob.append(r)

        return (PLAIN, step)

    def _compile_load(self, stmt):
        static = self._static_binding(stmt.array)
        if static is None:
            return self._compile_load_dynamic(stmt)
        ctx = self.ctx
        regs, ready = ctx.regs, ctx.ready
        tstats = ctx.stats
        ledger = ctx.ledger
        width = ledger.width
        rob, rob_size = ctx.rob, ctx.rob_size
        mshr, mshrs = ctx.mshr, ctx.config.mshrs
        tracer, tname = self._tracer, self._tname
        core = ctx.core
        dst = stmt.dst
        stage_name = self.stage.name
        array_op = stmt.array
        iname, iconst = self._reader(stmt.index)
        ready_get = ready.get
        data = static.data
        base = static.base
        esize = static.elem_size
        sname = static.name
        # Inline L1 lookup (MemorySystem.access): the MRU compare catches
        # streaming accesses; deeper hits reorder LRU; misses install the
        # tag and take the below-L1 walk. Same tag state, same counters.
        mem = ctx.mem
        shift = mem.LINE_SHIFT
        l1 = mem.l1[core]
        l1_sets = l1.sets
        scount = l1.sets_count
        l1_ways = l1.ways
        l1_stats = l1.stats
        cfg = ctx.config
        l1_lat = cfg.l1.latency
        pf_on = cfg.prefetch_enabled
        pf_deg = cfg.prefetch_degree
        below_l1 = mem.miss_below_l1
        pf_streams = mem.prefetchers[core].streams
        max_stride = mem.prefetchers[core].MAX_STRIDE
        prefetch_one = mem._prefetch

        def step():
            idx = regs[iname] if iname is not None else iconst
            # acquire
            t = ctx.cursor
            c = int(t)
            if c < t:
                c += 1
            slots = ledger.slots
            n = slots.get(c, 0)
            while n >= width:
                c += 1
                n = slots.get(c, 0)
            slots[c] = n + 1
            t = float(c)
            ctx.cursor = t
            tstats.uops += 1
            dep = ready_get(iname, 0.0) if iname is not None else 0.0
            start = t if t > dep else dep
            addr = base + idx * esize
            line = addr >> shift
            sindex = line % scount
            tag = line // scount
            entry = l1_sets.get(sindex)
            if entry is not None and entry[0] == tag:
                l1_stats.hits += 1
                latency = l1_lat
            elif entry is not None and tag in entry:
                pos = entry.index(tag, 1)
                del entry[pos]
                entry.insert(0, tag)
                l1_stats.hits += 1
                latency = l1_lat
            else:
                if entry is None:
                    l1_sets[sindex] = [tag]
                else:
                    entry.insert(0, tag)
                    if len(entry) > l1_ways:
                        entry.pop()
                l1_stats.misses += 1
                latency = below_l1(core, line, start)
            if pf_on:
                # stride observe (_StreamTable.observe, mem.py), inlined
                sentry = pf_streams.get(sname)
                if sentry is None:
                    pf_streams[sname] = (line, 0, 0)
                else:
                    last_line, pstride, prun = sentry
                    delta = line - last_line
                    if delta != 0:
                        if delta == pstride and 0 < abs(pstride) <= max_stride:
                            prun = prun + 1 if prun < 8 else 8
                            pf_streams[sname] = (line, pstride, prun)
                            if prun >= 2:
                                later = start + latency
                                for k in range(1, pf_deg + 1):
                                    prefetch_one(core, line + pstride * k, later)
                        else:
                            pf_streams[sname] = (line, delta, 1)
            comp = start + latency
            try:
                value = data[idx]
            except IndexError:
                raise SimulationError(
                    "stage %s: load %s[%d] out of bounds (len %d)"
                    % (stage_name, array_op, idx, len(data))
                )
            regs[dst] = value
            ready[dst] = comp
            tstats.loads += 1
            # mshr
            if len(mshr) >= mshrs:
                oldest = mshr.popleft()
                cur = ctx.cursor
                if oldest > cur:
                    tstats.mem_stall += oldest - cur
                    if tracer is not None:
                        tracer.stall(tname, "mem", cur, oldest)
                    ctx.cursor = oldest
            mshr.append(comp)
            # retire
            r = comp
            last = ctx.rob_last
            if r < last:
                r = last
            ctx.rob_last = r
            if len(rob) >= rob_size:
                oldest = rob.popleft()
                cur = ctx.cursor
                if oldest > cur:
                    tstats.mem_stall += oldest - cur
                    if tracer is not None:
                        tracer.stall(tname, "mem", cur, oldest)
                    ctx.cursor = oldest
            rob.append(r)

        return (PLAIN, step)

    def _compile_load_dynamic(self, stmt):
        """Load through a pointer register (binding resolved per execution)."""
        ctx = self.ctx
        regs, ready = ctx.regs, ctx.ready
        tstats = ctx.stats
        ledger = ctx.ledger
        width = ledger.width
        rob, rob_size = ctx.rob, ctx.rob_size
        mshr, mshrs = ctx.mshr, ctx.config.mshrs
        tracer, tname = self._tracer, self._tname
        core = ctx.core
        dst = stmt.dst
        stage_name = self.stage.name
        array_op = stmt.array
        get_binding = self._binding_getter(stmt.array)
        get_idx = self._val_getter(stmt.index)
        iname = self._ready_name(stmt.index)
        aname = self._ready_name(stmt.array)  # the pointer register
        ready_get = ready.get
        # Inline L1 lookup: same block as the static-binding load, only the
        # array binding (hence address and stream id) resolves per step.
        mem = ctx.mem
        shift = mem.LINE_SHIFT
        l1 = mem.l1[core]
        l1_sets = l1.sets
        scount = l1.sets_count
        l1_ways = l1.ways
        l1_stats = l1.stats
        cfg = ctx.config
        l1_lat = cfg.l1.latency
        pf_on = cfg.prefetch_enabled
        pf_deg = cfg.prefetch_degree
        below_l1 = mem.miss_below_l1
        pf_streams = mem.prefetchers[core].streams
        max_stride = mem.prefetchers[core].MAX_STRIDE
        prefetch_one = mem._prefetch

        def step():
            binding = get_binding()
            idx = get_idx()
            # acquire
            t = ctx.cursor
            c = int(t)
            if c < t:
                c += 1
            slots = ledger.slots
            n = slots.get(c, 0)
            while n >= width:
                c += 1
                n = slots.get(c, 0)
            slots[c] = n + 1
            t = float(c)
            ctx.cursor = t
            tstats.uops += 1
            dep = ready_get(iname, 0.0) if iname is not None else 0.0
            if aname is not None:
                r = ready_get(aname, 0.0)
                if r > dep:
                    dep = r
            start = t if t > dep else dep
            addr = binding.base + idx * binding.elem_size
            line = addr >> shift
            sindex = line % scount
            tag = line // scount
            entry = l1_sets.get(sindex)
            if entry is not None and entry[0] == tag:
                l1_stats.hits += 1
                latency = l1_lat
            elif entry is not None and tag in entry:
                pos = entry.index(tag, 1)
                del entry[pos]
                entry.insert(0, tag)
                l1_stats.hits += 1
                latency = l1_lat
            else:
                if entry is None:
                    l1_sets[sindex] = [tag]
                else:
                    entry.insert(0, tag)
                    if len(entry) > l1_ways:
                        entry.pop()
                l1_stats.misses += 1
                latency = below_l1(core, line, start)
            if pf_on:
                # stride observe (_StreamTable.observe, mem.py), inlined
                sentry = pf_streams.get(binding.name)
                if sentry is None:
                    pf_streams[binding.name] = (line, 0, 0)
                else:
                    last_line, pstride, prun = sentry
                    delta = line - last_line
                    if delta != 0:
                        if delta == pstride and 0 < abs(pstride) <= max_stride:
                            prun = prun + 1 if prun < 8 else 8
                            pf_streams[binding.name] = (line, pstride, prun)
                            if prun >= 2:
                                later = start + latency
                                for k in range(1, pf_deg + 1):
                                    prefetch_one(core, line + pstride * k, later)
                        else:
                            pf_streams[binding.name] = (line, delta, 1)
            comp = start + latency
            try:
                value = binding.data[idx]
            except IndexError:
                raise SimulationError(
                    "stage %s: load %s[%d] out of bounds (len %d)"
                    % (stage_name, array_op, idx, len(binding.data))
                )
            regs[dst] = value
            ready[dst] = comp
            tstats.loads += 1
            # mshr
            if len(mshr) >= mshrs:
                oldest = mshr.popleft()
                cur = ctx.cursor
                if oldest > cur:
                    tstats.mem_stall += oldest - cur
                    if tracer is not None:
                        tracer.stall(tname, "mem", cur, oldest)
                    ctx.cursor = oldest
            mshr.append(comp)
            # retire
            r = comp
            last = ctx.rob_last
            if r < last:
                r = last
            ctx.rob_last = r
            if len(rob) >= rob_size:
                oldest = rob.popleft()
                cur = ctx.cursor
                if oldest > cur:
                    tstats.mem_stall += oldest - cur
                    if tracer is not None:
                        tracer.stall(tname, "mem", cur, oldest)
                    ctx.cursor = oldest
            rob.append(r)

        return (PLAIN, step)

    def _compile_store(self, stmt):
        static = self._static_binding(stmt.array)
        if static is None:
            return self._compile_store_dynamic(stmt)
        ctx = self.ctx
        regs, ready = ctx.regs, ctx.ready
        tstats = ctx.stats
        ledger = ctx.ledger
        width = ledger.width
        rob, rob_size = ctx.rob, ctx.rob_size
        tracer, tname = self._tracer, self._tname
        core = ctx.core
        stage_name = self.stage.name
        array_op = stmt.array
        iname, iconst = self._reader(stmt.index)
        vname, vconst = self._reader(stmt.value)
        ready_get = ready.get
        data = static.data
        base = static.base
        esize = static.elem_size
        mem = ctx.mem
        shift = mem.LINE_SHIFT
        l1 = mem.l1[core]
        l1_sets = l1.sets
        scount = l1.sets_count
        l1_ways = l1.ways
        l1_stats = l1.stats
        below_l1 = mem.miss_below_l1

        def step():
            idx = regs[iname] if iname is not None else iconst
            value = regs[vname] if vname is not None else vconst
            # acquire
            t = ctx.cursor
            c = int(t)
            if c < t:
                c += 1
            slots = ledger.slots
            n = slots.get(c, 0)
            while n >= width:
                c += 1
                n = slots.get(c, 0)
            slots[c] = n + 1
            t = float(c)
            ctx.cursor = t
            tstats.uops += 1
            dep = ready_get(iname, 0.0) if iname is not None else 0.0
            if vname is not None:
                r = ready_get(vname, 0.0)
                if r > dep:
                    dep = r
            start = t if t > dep else dep
            addr = base + idx * esize
            # Inline L1 lookup; stores never trigger the prefetcher and
            # their latency is hidden by the store buffer (result unused).
            line = addr >> shift
            sindex = line % scount
            tag = line // scount
            entry = l1_sets.get(sindex)
            if entry is not None and entry[0] == tag:
                l1_stats.hits += 1
            elif entry is not None and tag in entry:
                pos = entry.index(tag, 1)
                del entry[pos]
                entry.insert(0, tag)
                l1_stats.hits += 1
            else:
                if entry is None:
                    l1_sets[sindex] = [tag]
                else:
                    entry.insert(0, tag)
                    if len(entry) > l1_ways:
                        entry.pop()
                l1_stats.misses += 1
                below_l1(core, line, start)
            try:
                data[idx] = value
            except IndexError:
                raise SimulationError(
                    "stage %s: store %s[%d] out of bounds (len %d)"
                    % (stage_name, array_op, idx, len(data))
                )
            tstats.stores += 1
            comp = start + 1
            # retire
            r = comp
            last = ctx.rob_last
            if r < last:
                r = last
            ctx.rob_last = r
            if len(rob) >= rob_size:
                oldest = rob.popleft()
                cur = ctx.cursor
                if oldest > cur:
                    tstats.mem_stall += oldest - cur
                    if tracer is not None:
                        tracer.stall(tname, "mem", cur, oldest)
                    ctx.cursor = oldest
            rob.append(r)

        return (PLAIN, step)

    def _compile_store_dynamic(self, stmt):
        ctx = self.ctx
        ready = ctx.ready
        tstats = ctx.stats
        acquire, retire = self._acquire, self._retire
        mem_access = self._mem_access
        core = ctx.core
        stage_name = self.stage.name
        array_op = stmt.array
        get_binding = self._binding_getter(stmt.array)
        get_idx = self._val_getter(stmt.index)
        get_val = self._val_getter(stmt.value)
        iname = self._ready_name(stmt.index)
        vname = self._ready_name(stmt.value)
        ready_get = ready.get

        def step():
            binding = get_binding()
            idx = get_idx()
            value = get_val()
            t = acquire(ctx.cursor)
            ctx.cursor = t
            tstats.uops += 1
            dep = ready_get(iname, 0.0) if iname is not None else 0.0
            if vname is not None:
                r = ready_get(vname, 0.0)
                if r > dep:
                    dep = r
            start = t if t > dep else dep
            addr = binding.base + idx * binding.elem_size
            mem_access(core, addr, start, stream_id=binding.name, is_store=True)
            try:
                binding.data[idx] = value
            except IndexError:
                raise SimulationError(
                    "stage %s: store %s[%d] out of bounds (len %d)"
                    % (stage_name, array_op, idx, len(binding.data))
                )
            tstats.stores += 1
            retire(start + 1)

        return (PLAIN, step)

    def _compile_prefetch(self, stmt):
        static = self._static_binding(stmt.array)
        if static is None:
            return self._compile_prefetch_dynamic(stmt)
        ctx = self.ctx
        regs, ready = ctx.regs, ctx.ready
        tstats = ctx.stats
        ledger = ctx.ledger
        width = ledger.width
        rob, rob_size = ctx.rob, ctx.rob_size
        mshr, mshrs = ctx.mshr, ctx.config.mshrs
        tracer, tname = self._tracer, self._tname
        core = ctx.core
        iname, iconst = self._reader(stmt.index)
        ready_get = ready.get
        data = static.data
        base = static.base
        esize = static.elem_size
        sname = static.name
        mem = ctx.mem
        shift = mem.LINE_SHIFT
        l1 = mem.l1[core]
        l1_sets = l1.sets
        scount = l1.sets_count
        l1_ways = l1.ways
        l1_stats = l1.stats
        cfg = ctx.config
        l1_lat = cfg.l1.latency
        pf_on = cfg.prefetch_enabled
        pf_deg = cfg.prefetch_degree
        below_l1 = mem.miss_below_l1
        pf_streams = mem.prefetchers[core].streams
        max_stride = mem.prefetchers[core].MAX_STRIDE
        prefetch_one = mem._prefetch

        def step():
            idx = regs[iname] if iname is not None else iconst
            # acquire
            t = ctx.cursor
            c = int(t)
            if c < t:
                c += 1
            slots = ledger.slots
            n = slots.get(c, 0)
            while n >= width:
                c += 1
                n = slots.get(c, 0)
            slots[c] = n + 1
            t = float(c)
            ctx.cursor = t
            tstats.uops += 1
            dep = ready_get(iname, 0.0) if iname is not None else 0.0
            start = t if t > dep else dep
            if 0 <= idx < len(data):
                addr = base + idx * esize
                line = addr >> shift
                sindex = line % scount
                tag = line // scount
                entry = l1_sets.get(sindex)
                if entry is not None and entry[0] == tag:
                    l1_stats.hits += 1
                    latency = l1_lat
                elif entry is not None and tag in entry:
                    pos = entry.index(tag, 1)
                    del entry[pos]
                    entry.insert(0, tag)
                    l1_stats.hits += 1
                    latency = l1_lat
                else:
                    if entry is None:
                        l1_sets[sindex] = [tag]
                    else:
                        entry.insert(0, tag)
                        if len(entry) > l1_ways:
                            entry.pop()
                    l1_stats.misses += 1
                    latency = below_l1(core, line, start)
                if pf_on:
                    # stride observe (_StreamTable.observe, mem.py), inlined
                    sentry = pf_streams.get(sname)
                    if sentry is None:
                        pf_streams[sname] = (line, 0, 0)
                    else:
                        last_line, pstride, prun = sentry
                        delta = line - last_line
                        if delta != 0:
                            if delta == pstride and 0 < abs(pstride) <= max_stride:
                                prun = prun + 1 if prun < 8 else 8
                                pf_streams[sname] = (line, pstride, prun)
                                if prun >= 2:
                                    later = start + latency
                                    for k in range(1, pf_deg + 1):
                                        prefetch_one(core, line + pstride * k, later)
                            else:
                                pf_streams[sname] = (line, delta, 1)
                comp = start + latency
                tstats.loads += 1
                # mshr
                if len(mshr) >= mshrs:
                    oldest = mshr.popleft()
                    cur = ctx.cursor
                    if oldest > cur:
                        tstats.mem_stall += oldest - cur
                        if tracer is not None:
                            tracer.stall(tname, "mem", cur, oldest)
                        ctx.cursor = oldest
                mshr.append(comp)
                # retire
                r = comp
                last = ctx.rob_last
                if r < last:
                    r = last
                ctx.rob_last = r
                if len(rob) >= rob_size:
                    oldest = rob.popleft()
                    cur = ctx.cursor
                    if oldest > cur:
                        tstats.mem_stall += oldest - cur
                        if tracer is not None:
                            tracer.stall(tname, "mem", cur, oldest)
                        ctx.cursor = oldest
                rob.append(r)

        return (PLAIN, step)

    def _compile_prefetch_dynamic(self, stmt):
        ctx = self.ctx
        ready = ctx.ready
        tstats = ctx.stats
        acquire, retire = self._acquire, self._retire
        mshr_claim, mem_access = self._mshr_claim, self._mem_access
        core = ctx.core
        get_binding = self._binding_getter(stmt.array)
        get_idx = self._val_getter(stmt.index)
        iname = self._ready_name(stmt.index)
        ready_get = ready.get

        def step():
            binding = get_binding()
            idx = get_idx()
            t = acquire(ctx.cursor)
            ctx.cursor = t
            tstats.uops += 1
            dep = ready_get(iname, 0.0) if iname is not None else 0.0
            start = t if t > dep else dep
            if 0 <= idx < len(binding.data):
                addr = binding.base + idx * binding.elem_size
                latency = mem_access(core, addr, start, stream_id=binding.name)
                comp = start + latency
                tstats.loads += 1
                mshr_claim(comp)
                retire(comp)

        return (PLAIN, step)

    def _compile_is_control(self, stmt):
        ctx = self.ctx
        regs, ready = ctx.regs, ctx.ready
        tstats = ctx.stats
        ledger = ctx.ledger
        width = ledger.width
        rob, rob_size = ctx.rob, ctx.rob_size
        tracer, tname = self._tracer, self._tname
        dst = stmt.dst
        sname, sconst = self._reader(stmt.src)
        ready_get = ready.get

        def step():
            value = regs[sname] if sname is not None else sconst
            # acquire
            t = ctx.cursor
            c = int(t)
            if c < t:
                c += 1
            slots = ledger.slots
            n = slots.get(c, 0)
            while n >= width:
                c += 1
                n = slots.get(c, 0)
            slots[c] = n + 1
            t = float(c)
            ctx.cursor = t
            tstats.uops += 1
            dep = ready_get(sname, 0.0) if sname is not None else 0.0
            comp = (t if t > dep else dep) + 1
            regs[dst] = 1 if type(value) is Ctrl else 0
            ready[dst] = comp
            # retire
            r = comp
            last = ctx.rob_last
            if r < last:
                r = last
            ctx.rob_last = r
            if len(rob) >= rob_size:
                oldest = rob.popleft()
                cur = ctx.cursor
                if oldest > cur:
                    tstats.mem_stall += oldest - cur
                    if tracer is not None:
                        tracer.stall(tname, "mem", cur, oldest)
                    ctx.cursor = oldest
            rob.append(r)

        return (PLAIN, step)

    def _compile_call(self, stmt):
        ctx = self.ctx
        regs, ready = ctx.regs, ctx.ready
        tstats = ctx.stats
        acquire, retire = self._acquire, self._retire
        dst = stmt.dst
        func = stmt.func
        getters = [self._val_getter(a) for a in stmt.args]
        rnames = tuple(a for a in stmt.args if _is_reg(a))
        ready_get = ready.get
        intr = self.env.intrinsics.get(func)
        if intr is None:

            def step():
                raise SimulationError("unbound intrinsic %r" % func)

            return (PLAIN, step)
        cost = max(1, intr.cost)
        fn = intr.fn

        def step():
            vals = [g() for g in getters]
            t = acquire(ctx.cursor)
            for _ in range(cost - 1):
                t = acquire(t)
            ctx.cursor = t
            tstats.uops += cost
            dep = 0.0
            for name in rnames:
                r = ready_get(name, 0.0)
                if r > dep:
                    dep = r
            comp = (t if t > dep else dep) + 1
            result = fn(*vals)
            if dst is not None:
                regs[dst] = result if result is not None else 0
                ready[dst] = comp
            retire(comp)

        return (PLAIN, step)

    def _compile_read_shared(self, stmt):
        ctx = self.ctx
        regs, ready = ctx.regs, ctx.ready
        tstats = ctx.stats
        acquire, retire = self._acquire, self._retire
        shared_read = self.env.shared.read
        dst, var = stmt.dst, stmt.var

        def step():
            t = acquire(ctx.cursor)
            ctx.cursor = t
            tstats.uops += 1
            regs[dst] = shared_read(var)
            ready[dst] = t + 1
            retire(t + 1)

        return (PLAIN, step)

    def _compile_write_shared(self, stmt):
        ctx = self.ctx
        ready = ctx.ready
        tstats = ctx.stats
        acquire, retire = self._acquire, self._retire
        shared_write = self.env.shared.write
        var = stmt.var
        get_val = self._val_getter(stmt.value)
        vname = self._ready_name(stmt.value)
        ready_get = ready.get

        def step():
            value = get_val()
            t = acquire(ctx.cursor)
            ctx.cursor = t
            tstats.uops += 1
            shared_write(var, value)
            dep = ready_get(vname, 0.0) if vname is not None else 0.0
            retire((t if t > dep else dep) + 1)

        return (PLAIN, step)

    def _compile_atomic_rmw(self, stmt):
        static = self._static_binding(stmt.array)
        if static is None:
            return self._compile_atomic_rmw_dynamic(stmt)
        ctx = self.ctx
        regs, ready = ctx.regs, ctx.ready
        tstats = ctx.stats
        ledger = ctx.ledger
        width = ledger.width
        rob, rob_size = ctx.rob, ctx.rob_size
        mshr, mshrs = ctx.mshr, ctx.config.mshrs
        tracer, tname = self._tracer, self._tname
        core = ctx.core
        overhead = self.env.atomic_overhead
        dst = stmt.dst
        opfn = _PYTHON_BINARY[stmt.op]
        iname, iconst = self._reader(stmt.index)
        vname, vconst = self._reader(stmt.value)
        ready_get = ready.get
        data = static.data
        base = static.base
        esize = static.elem_size
        sname = static.name
        mem = ctx.mem
        shift = mem.LINE_SHIFT
        l1 = mem.l1[core]
        l1_sets = l1.sets
        scount = l1.sets_count
        l1_ways = l1.ways
        l1_stats = l1.stats
        cfg = ctx.config
        l1_lat = cfg.l1.latency
        pf_on = cfg.prefetch_enabled
        pf_deg = cfg.prefetch_degree
        below_l1 = mem.miss_below_l1
        pf_streams = mem.prefetchers[core].streams
        max_stride = mem.prefetchers[core].MAX_STRIDE
        prefetch_one = mem._prefetch

        def step():
            idx = regs[iname] if iname is not None else iconst
            value = regs[vname] if vname is not None else vconst
            # acquire x3: load-linked, op, store-conditional
            t = ctx.cursor
            c = int(t)
            if c < t:
                c += 1
            slots = ledger.slots
            n = slots.get(c, 0)
            while n >= width:
                c += 1
                n = slots.get(c, 0)
            slots[c] = n + 1
            n = slots.get(c, 0)
            while n >= width:
                c += 1
                n = slots.get(c, 0)
            slots[c] = n + 1
            n = slots.get(c, 0)
            while n >= width:
                c += 1
                n = slots.get(c, 0)
            slots[c] = n + 1
            t = float(c)
            ctx.cursor = t
            tstats.uops += 3
            dep = ready_get(iname, 0.0) if iname is not None else 0.0
            if vname is not None:
                r = ready_get(vname, 0.0)
                if r > dep:
                    dep = r
            start = t if t > dep else dep
            addr = base + idx * esize
            line = addr >> shift
            sindex = line % scount
            tag = line // scount
            entry = l1_sets.get(sindex)
            if entry is not None and entry[0] == tag:
                l1_stats.hits += 1
                latency = l1_lat
            elif entry is not None and tag in entry:
                pos = entry.index(tag, 1)
                del entry[pos]
                entry.insert(0, tag)
                l1_stats.hits += 1
                latency = l1_lat
            else:
                if entry is None:
                    l1_sets[sindex] = [tag]
                else:
                    entry.insert(0, tag)
                    if len(entry) > l1_ways:
                        entry.pop()
                l1_stats.misses += 1
                latency = below_l1(core, line, start)
            if pf_on:
                # stride observe (_StreamTable.observe, mem.py), inlined
                sentry = pf_streams.get(sname)
                if sentry is None:
                    pf_streams[sname] = (line, 0, 0)
                else:
                    last_line, pstride, prun = sentry
                    delta = line - last_line
                    if delta != 0:
                        if delta == pstride and 0 < abs(pstride) <= max_stride:
                            prun = prun + 1 if prun < 8 else 8
                            pf_streams[sname] = (line, pstride, prun)
                            if prun >= 2:
                                later = start + latency
                                for k in range(1, pf_deg + 1):
                                    prefetch_one(core, line + pstride * k, later)
                        else:
                            pf_streams[sname] = (line, delta, 1)
            comp = start + latency + overhead
            old = data[idx]
            data[idx] = opfn(old, value)
            if dst is not None:
                regs[dst] = old
                ready[dst] = comp
            tstats.loads += 1
            tstats.stores += 1
            # mshr
            if len(mshr) >= mshrs:
                oldest = mshr.popleft()
                cur = ctx.cursor
                if oldest > cur:
                    tstats.mem_stall += oldest - cur
                    if tracer is not None:
                        tracer.stall(tname, "mem", cur, oldest)
                    ctx.cursor = oldest
            mshr.append(comp)
            # retire
            r = comp
            last = ctx.rob_last
            if r < last:
                r = last
            ctx.rob_last = r
            if len(rob) >= rob_size:
                oldest = rob.popleft()
                cur = ctx.cursor
                if oldest > cur:
                    tstats.mem_stall += oldest - cur
                    if tracer is not None:
                        tracer.stall(tname, "mem", cur, oldest)
                    ctx.cursor = oldest
            rob.append(r)

        return (PLAIN, step)

    def _compile_atomic_rmw_dynamic(self, stmt):
        ctx = self.ctx
        regs, ready = ctx.regs, ctx.ready
        tstats = ctx.stats
        acquire, retire = self._acquire, self._retire
        mshr_claim, mem_access = self._mshr_claim, self._mem_access
        core = ctx.core
        overhead = self.env.atomic_overhead
        dst = stmt.dst
        opfn = _PYTHON_BINARY[stmt.op]
        get_binding = self._binding_getter(stmt.array)
        get_idx = self._val_getter(stmt.index)
        get_val = self._val_getter(stmt.value)
        iname = self._ready_name(stmt.index)
        vname = self._ready_name(stmt.value)
        ready_get = ready.get

        def step():
            binding = get_binding()
            idx = get_idx()
            value = get_val()
            t = acquire(ctx.cursor)
            t = acquire(t)
            t = acquire(t)
            ctx.cursor = t
            tstats.uops += 3
            dep = ready_get(iname, 0.0) if iname is not None else 0.0
            if vname is not None:
                r = ready_get(vname, 0.0)
                if r > dep:
                    dep = r
            start = t if t > dep else dep
            addr = binding.base + idx * binding.elem_size
            latency = mem_access(core, addr, start, stream_id=binding.name)
            comp = start + latency + overhead
            data = binding.data
            old = data[idx]
            data[idx] = opfn(old, value)
            if dst is not None:
                regs[dst] = old
                ready[dst] = comp
            tstats.loads += 1
            tstats.stores += 1
            mshr_claim(comp)
            retire(comp)

        return (PLAIN, step)

    def _compile_comment(self, stmt):
        return None

    def _compile_break(self, stmt):
        signal = ("break", stmt.levels)
        return (PLAIN, lambda: signal)

    def _compile_continue(self, stmt):
        signal = ("continue", 1)
        return (PLAIN, lambda: signal)

    # -- control flow -------------------------------------------------------

    def _compile_if(self, stmt):
        ctx = self.ctx
        regs, ready = ctx.regs, ctx.ready
        tstats = ctx.stats
        ledger = ctx.ledger
        width = ledger.width
        pred = ctx.pred
        ptable = pred.table
        pmask = pred.mask
        phmask = pred.history_mask
        tracer, tname = self._tracer, self._tname
        penalty = self._penalty
        pc = self.pcs[id(stmt)]
        cname, cconst = self._reader(stmt.cond)
        ready_get = ready.get
        then_mode, then_fn = self._compile_body(stmt.then_body)
        else_mode, else_fn = self._compile_body(stmt.else_body or [])

        def branch_head():
            """Shared timing prologue; returns the taken flag."""
            cond = regs[cname] if cname is not None else cconst
            taken = True if cond else False
            # acquire
            t = ctx.cursor
            c = int(t)
            if c < t:
                c += 1
            slots = ledger.slots
            n = slots.get(c, 0)
            while n >= width:
                c += 1
                n = slots.get(c, 0)
            slots[c] = n + 1
            t = float(c)
            ctx.cursor = t
            tstats.uops += 1
            tstats.branches += 1
            # gshare predict_and_update (branch.py), inlined
            history = pred.history
            pindex = (pc ^ history) & pmask
            counter = ptable[pindex]
            if taken:
                if counter < 3:
                    ptable[pindex] = counter + 1
            else:
                if counter > 0:
                    ptable[pindex] = counter - 1
            pred.history = ((history << 1) | (1 if taken else 0)) & phmask
            if (counter >= 2) != taken:
                dep = ready_get(cname, 0.0) if cname is not None else 0.0
                resolve = t if t > dep else dep
                target = resolve + penalty
                tstats.mispredicts += 1
                tstats.branch_stall += target - t
                if tracer is not None and target > t:
                    tracer.stall(tname, "branch", t, target)
                ctx.cursor = target
            return taken

        top = then_mode if then_mode > else_mode else else_mode
        if top < GEN:
            # PLAIN bodies return None/tuple, which is also valid under the
            # MAYBE contract, so one pass-through step covers both modes.
            def step():
                if branch_head():
                    return then_fn() if then_fn is not None else None
                return else_fn() if else_fn is not None else None

            return (top, step)

        def step_gen():
            if branch_head():
                mode, fn = then_mode, then_fn
            else:
                mode, fn = else_mode, else_fn
            if fn is None:
                return None
            if mode == GEN:
                return (yield from fn())
            signal = fn()
            if signal is not None and mode == MAYBE and type(signal) is not tuple:
                return (yield from signal)
            return signal

        return (GEN, step_gen)

    def _compile_for(self, stmt):
        ctx = self.ctx
        regs, ready = ctx.regs, ctx.ready
        tstats = ctx.stats
        ledger = ctx.ledger
        width = ledger.width
        pred = ctx.pred
        ptable = pred.table
        pmask = pred.mask
        phmask = pred.history_mask
        tracer, tname = self._tracer, self._tname
        penalty = self._penalty
        pc = self.pcs[id(stmt)]
        var = stmt.var
        lo_name, lo_const = self._reader(stmt.lo)
        hi_name, hi_const = self._reader(stmt.hi)
        st_name, st_const = self._reader(stmt.step)
        ready_get = ready.get
        body_mode, body_fn = self._compile_body(stmt.body)

        def loop_head(taken, bound_dep):
            """Per-iteration loop-control timing (issue 3, predict, redirect)."""
            # acquire x3: increment, compare, branch
            t = ctx.cursor
            c = int(t)
            if c < t:
                c += 1
            slots = ledger.slots
            n = slots.get(c, 0)
            while n >= width:
                c += 1
                n = slots.get(c, 0)
            slots[c] = n + 1
            n = slots.get(c, 0)
            while n >= width:
                c += 1
                n = slots.get(c, 0)
            slots[c] = n + 1
            n = slots.get(c, 0)
            while n >= width:
                c += 1
                n = slots.get(c, 0)
            slots[c] = n + 1
            t = float(c)
            ctx.cursor = t
            tstats.uops += 3
            tstats.branches += 1
            # gshare predict_and_update (branch.py), inlined
            history = pred.history
            pindex = (pc ^ history) & pmask
            counter = ptable[pindex]
            if taken:
                if counter < 3:
                    ptable[pindex] = counter + 1
            else:
                if counter > 0:
                    ptable[pindex] = counter - 1
            pred.history = ((history << 1) | (1 if taken else 0)) & phmask
            if (counter >= 2) != taken:
                resolve = t if t > bound_dep else bound_dep
                target = resolve + penalty
                tstats.mispredicts += 1
                stall = target - t
                tstats.branch_stall += stall if stall > 0.0 else 0.0
                if target > t:
                    if tracer is not None:
                        tracer.stall(tname, "branch", t, target)
                    ctx.cursor = target

        def bounds():
            lo = regs[lo_name] if lo_name is not None else lo_const
            hi = regs[hi_name] if hi_name is not None else hi_const
            step = regs[st_name] if st_name is not None else st_const
            dep = ready_get(lo_name, 0.0) if lo_name is not None else 0.0
            if hi_name is not None:
                r = ready_get(hi_name, 0.0)
                if r > dep:
                    dep = r
            return lo, hi, step, dep

        if body_mode == PLAIN:

            def step():
                i, hi, stp, bound_dep = bounds()
                while True:
                    taken = i < hi
                    loop_head(taken, bound_dep)
                    if not taken:
                        break
                    regs[var] = i
                    ready[var] = ctx.cursor
                    signal = body_fn() if body_fn is not None else None
                    if signal is not None:
                        kind, levels = signal
                        if kind == "continue":
                            pass
                        elif kind == "break":
                            if levels > 1:
                                return ("break", levels - 1)
                            break
                        else:
                            return signal
                    i += stp
                return None

            return (PLAIN, step)

        if body_mode == MAYBE:

            def resume(cont, i, hi, stp, bound_dep):
                """Finish the blocked iteration, then keep looping."""
                signal = yield from cont
                while True:
                    if signal is not None:
                        kind, levels = signal
                        if kind == "continue":
                            pass
                        elif kind == "break":
                            if levels > 1:
                                return ("break", levels - 1)
                            return None
                        else:
                            return signal
                    i += stp
                    taken = i < hi
                    loop_head(taken, bound_dep)
                    if not taken:
                        return None
                    regs[var] = i
                    ready[var] = ctx.cursor
                    signal = body_fn()
                    if signal is not None and type(signal) is not tuple:
                        signal = yield from signal

            def step():
                i, hi, stp, bound_dep = bounds()
                while True:
                    taken = i < hi
                    loop_head(taken, bound_dep)
                    if not taken:
                        return None
                    regs[var] = i
                    ready[var] = ctx.cursor
                    signal = body_fn()
                    if signal is not None:
                        if type(signal) is not tuple:
                            return resume(signal, i, hi, stp, bound_dep)
                        kind, levels = signal
                        if kind == "continue":
                            pass
                        elif kind == "break":
                            if levels > 1:
                                return ("break", levels - 1)
                            return None
                        else:
                            return signal
                    i += stp

            return (MAYBE, step)

        def step_gen():
            i, hi, stp, bound_dep = bounds()
            while True:
                taken = i < hi
                loop_head(taken, bound_dep)
                if not taken:
                    break
                regs[var] = i
                ready[var] = ctx.cursor
                signal = yield from body_fn()
                if signal is not None:
                    kind, levels = signal
                    if kind == "continue":
                        pass
                    elif kind == "break":
                        if levels > 1:
                            return ("break", levels - 1)
                        break
                    else:
                        return signal
                i += stp
            return None

        return (GEN, step_gen)

    def _compile_loop(self, stmt):
        body_mode, body_fn = self._compile_body(stmt.body)
        if body_fn is None:
            raise SimulationError("loop with empty body never terminates")

        if body_mode == PLAIN:

            def step():
                while True:
                    signal = body_fn()
                    if signal is not None:
                        kind, levels = signal
                        if kind == "continue":
                            continue
                        if kind == "break":
                            if levels > 1:
                                return ("break", levels - 1)
                            return None
                        return signal

            return (PLAIN, step)

        if body_mode == MAYBE:

            def resume(cont):
                """Finish the blocked iteration, then keep looping."""
                signal = yield from cont
                while True:
                    if signal is not None:
                        kind, levels = signal
                        if kind == "continue":
                            pass
                        elif kind == "break":
                            if levels > 1:
                                return ("break", levels - 1)
                            return None
                        else:
                            return signal
                    signal = body_fn()
                    if signal is not None and type(signal) is not tuple:
                        signal = yield from signal

            def step():
                while True:
                    signal = body_fn()
                    if signal is not None:
                        if type(signal) is not tuple:
                            return resume(signal)
                        kind, levels = signal
                        if kind == "continue":
                            continue
                        if kind == "break":
                            if levels > 1:
                                return ("break", levels - 1)
                            return None
                        return signal

            return (MAYBE, step)

        def step_gen():
            while True:
                signal = yield from body_fn()
                if signal is not None:
                    kind, levels = signal
                    if kind == "continue":
                        continue
                    if kind == "break":
                        if levels > 1:
                            return ("break", levels - 1)
                        return None
                    return signal

        return (GEN, step_gen)

    # -- queues -------------------------------------------------------------

    def _make_enq(self, queue, vname, vconst, count_ctrl):
        """MAYBE step for a point-to-point enqueue (enq / enq_ctrl).

        The plain call covers the non-blocking case end to end; a full
        queue returns the ``blocked`` generator continuation instead, which
        replays the interpreter's wait-retry-stall sequence.
        """
        ctx = self.ctx
        regs = ctx.regs
        tstats = ctx.stats
        sstats = self.env.stats
        ledger = ctx.ledger
        width = ledger.width
        rob, rob_size = ctx.rob, ctx.rob_size
        tracer, tname = self._tracer, self._tname
        task = ctx.task
        try_enq = queue.try_enq
        ready_get = ctx.ready.get
        block_key = ("enq", queue.qid)
        entries = queue.entries
        slot_free = queue.slot_free
        qlat = queue.latency
        qtracer = queue.tracer
        qlabel = queue.label

        def finish(t, start):
            """Post-enqueue bookkeeping shared by both paths."""
            tstats.queue_ops += 1
            sstats.queue_enqs += 1
            comp = (t if t > start else start) + 1
            # retire
            r = comp
            last = ctx.rob_last
            if r < last:
                r = last
            ctx.rob_last = r
            if len(rob) >= rob_size:
                oldest = rob.popleft()
                cur = ctx.cursor
                if oldest > cur:
                    tstats.mem_stall += oldest - cur
                    if tracer is not None:
                        tracer.stall(tname, "mem", cur, oldest)
                    ctx.cursor = oldest
            rob.append(r)
            if count_ctrl:
                sstats.ctrl_values += 1

        def blocked(value, start):
            wait_from = ctx.cursor
            t = None
            while t is None:
                task.block(block_key)
                queue.waiting_producers.append(task)
                yield BLOCKED
                t = try_enq(start if start > ctx.cursor else ctx.cursor, value, 0.0)
            if t > ctx.cursor:
                tstats.queue_stall += t - wait_from
                if tracer is not None:
                    tracer.stall(tname, "queue", wait_from, t)
                ctx.cursor = t
            finish(t, start)

        def step():
            value = regs[vname] if vname is not None else vconst
            # acquire
            t0 = ctx.cursor
            c = int(t0)
            if c < t0:
                c += 1
            slots = ledger.slots
            n = slots.get(c, 0)
            while n >= width:
                c += 1
                n = slots.get(c, 0)
            slots[c] = n + 1
            t0 = float(c)
            ctx.cursor = t0
            tstats.uops += 1
            dep = ready_get(vname, 0.0) if vname is not None else 0.0
            start = t0 if t0 > dep else dep
            # try_enq (queues.py), inlined
            if not slot_free:
                queue.full_blocks += 1
                return blocked(value, start)
            freed_at = slot_free.popleft()
            t = freed_at if freed_at > start else start
            entries.append((value, t + qlat))
            queue.total_enqs += 1
            occupancy = len(entries)
            if occupancy > queue.max_occupancy:
                queue.max_occupancy = occupancy
            if qtracer is not None:
                qtracer.counter(qlabel, t, occupancy)
            if queue.waiting_consumers:
                waiters = queue.waiting_consumers
                queue.waiting_consumers = []
                for waiter in waiters:
                    waiter.wake()
            if t > start:
                tstats.queue_stall += t - t0
                if tracer is not None:
                    tracer.stall(tname, "queue", t0, t)
                ctx.cursor = t
            # finish, inlined
            tstats.queue_ops += 1
            sstats.queue_enqs += 1
            comp = (t if t > start else start) + 1
            r = comp
            last = ctx.rob_last
            if r < last:
                r = last
            ctx.rob_last = r
            if len(rob) >= rob_size:
                oldest = rob.popleft()
                cur = ctx.cursor
                if oldest > cur:
                    tstats.mem_stall += oldest - cur
                    if tracer is not None:
                        tracer.stall(tname, "mem", cur, oldest)
                    ctx.cursor = oldest
            rob.append(r)
            if count_ctrl:
                sstats.ctrl_values += 1
            return None

        return (MAYBE, step)

    def _compile_enq(self, stmt):
        queue = self.env.queue_of(self, stmt.queue)
        vname, vconst = self._reader(stmt.value)
        return self._make_enq(queue, vname, vconst, count_ctrl=False)

    def _compile_enq_ctrl(self, stmt):
        queue = self.env.queue_of(self, stmt.queue)
        return self._make_enq(queue, None, stmt.ctrl, count_ctrl=True)

    def _enq_core(self):
        """One generator shared by the distributed enqueue flavours.

        Mirrors ``StageInterp.do_enq`` exactly: only an architecturally full
        queue blocks the thread; in-flight values ride the entry timestamp.
        """
        ctx = self.ctx
        tstats = ctx.stats
        sstats = self.env.stats
        acquire, retire = self._acquire, self._retire
        tracer, tname = self._tracer, self._tname
        task = ctx.task

        def enq_core(queue, value, dep, extra, block_key):
            t0 = acquire(ctx.cursor)
            ctx.cursor = t0
            tstats.uops += 1
            start = t0 if t0 > dep else dep
            t = queue.try_enq(start, value, extra)
            if t is None:
                wait_from = ctx.cursor
                while t is None:
                    task.block(block_key)
                    queue.waiting_producers.append(task)
                    yield BLOCKED
                    t = queue.try_enq(
                        start if start > ctx.cursor else ctx.cursor, value, extra
                    )
                if t > ctx.cursor:
                    tstats.queue_stall += t - wait_from
                    if tracer is not None:
                        tracer.stall(tname, "queue", wait_from, t)
                    ctx.cursor = t
            elif t > start:
                tstats.queue_stall += t - ctx.cursor
                if tracer is not None:
                    tracer.stall(tname, "queue", ctx.cursor, t)
                ctx.cursor = t
            tstats.queue_ops += 1
            sstats.queue_enqs += 1
            retire((t if t > start else start) + 1)

        return enq_core

    def _compile_enq_dist(self, stmt):
        env = self.env
        qid = stmt.queue
        get_rep = self._val_getter(stmt.replica)
        get_val = self._val_getter(stmt.value)
        vname = self._ready_name(stmt.value)
        ready_get = self.ctx.ready.get
        enq_core = self._enq_core()
        block_key = ("enq", qid)
        interp = self

        def step_gen():
            replica = get_rep()
            queue, extra = env.remote_queue(interp, qid, replica)
            dep = ready_get(vname, 0.0) if vname is not None else 0.0
            yield from enq_core(queue, get_val(), dep, extra, block_key)

        return (GEN, step_gen)

    def _compile_enq_ctrl_dist(self, stmt):
        env = self.env
        qid = stmt.queue
        ctrl = stmt.ctrl
        sstats = env.stats
        enq_core = self._enq_core()
        block_key = ("enq", qid)
        interp = self

        def step_gen():
            for queue, extra in env.all_replica_queues(interp, qid):
                yield from enq_core(queue, ctrl, 0.0, extra, block_key)
                sstats.ctrl_values += 1

        return (GEN, step_gen)

    def _compile_deq(self, stmt):
        ctx = self.ctx
        regs, ready = ctx.regs, ctx.ready
        tstats = ctx.stats
        sstats = self.env.stats
        ledger = ctx.ledger
        width = ledger.width
        rob, rob_size = ctx.rob, ctx.rob_size
        tracer, tname = self._tracer, self._tname
        task = ctx.task
        dst = stmt.dst
        qid = stmt.queue
        queue = self.env.queue_of(self, qid)
        try_deq = queue.try_deq
        has_handler = qid in self.handlers
        chandlers = self._chandlers
        block_key = ("deq", qid)
        entries = queue.entries
        slot_free = queue.slot_free
        qtracer = queue.tracer
        qlabel = queue.label

        def finish(t):
            """Post-dequeue bookkeeping (counters + inline retire)."""
            tstats.queue_ops += 1
            sstats.queue_deqs += 1
            comp = t + 1
            r = comp
            last = ctx.rob_last
            if r < last:
                r = last
            ctx.rob_last = r
            if len(rob) >= rob_size:
                oldest = rob.popleft()
                cur = ctx.cursor
                if oldest > cur:
                    tstats.mem_stall += oldest - cur
                    if tracer is not None:
                        tracer.stall(tname, "mem", cur, oldest)
                    ctx.cursor = oldest
            rob.append(r)

        def deq_gen(handler, missed):
            """Full generator dequeue loop.

            ``missed=True`` enters mid-state: the plain step has already
            issued the acquire and seen the first ``try_deq`` come up empty.
            """
            while True:
                if missed:
                    missed = False
                    res = None
                else:
                    # acquire
                    t0 = ctx.cursor
                    c = int(t0)
                    if c < t0:
                        c += 1
                    slots = ledger.slots
                    n = slots.get(c, 0)
                    while n >= width:
                        c += 1
                        n = slots.get(c, 0)
                    slots[c] = n + 1
                    t0 = float(c)
                    ctx.cursor = t0
                    tstats.uops += 1
                    res = try_deq(t0)
                if res is None:
                    wait_from = ctx.cursor
                    while res is None:
                        task.block(block_key)
                        queue.waiting_consumers.append(task)
                        yield BLOCKED
                        res = try_deq(ctx.cursor)
                    value, t = res
                    if t > ctx.cursor:
                        stall = t - wait_from
                        tstats.queue_stall += stall if stall > 0.0 else 0.0
                        if tracer is not None and t > wait_from:
                            tracer.stall(tname, "queue", wait_from, t)
                        ctx.cursor = t
                else:
                    value, t = res
                finish(t)
                if handler is not None and type(value) is Ctrl:
                    regs["%ctrl"] = value
                    ready["%ctrl"] = t
                    h_mode, h_fn = handler
                    if h_fn is None:
                        signal = None
                    elif h_mode == GEN:
                        signal = yield from h_fn()
                    else:
                        signal = h_fn()
                        if signal is not None and h_mode == MAYBE and type(signal) is not tuple:
                            signal = yield from signal
                    if signal is not None:
                        return signal  # typically ('break', n) out of the loop
                    continue  # handler fell through: retry the dequeue
                regs[dst] = value
                ready[dst] = t
                return None

        def after_handler(cont, handler):
            """Finish a blocked MAYBE handler, then re-enter the deq loop."""
            signal = yield from cont
            if signal is not None:
                return signal
            return (yield from deq_gen(handler, False))

        def run_gen_handler(h_fn, handler):
            """Run a GEN handler, then re-enter the deq loop."""
            signal = yield from h_fn()
            if signal is not None:
                return signal
            return (yield from deq_gen(handler, False))

        def step():
            handler = chandlers.get(qid) if has_handler else None
            while True:
                # acquire
                t0 = ctx.cursor
                c = int(t0)
                if c < t0:
                    c += 1
                slots = ledger.slots
                n = slots.get(c, 0)
                while n >= width:
                    c += 1
                    n = slots.get(c, 0)
                slots[c] = n + 1
                t0 = float(c)
                ctx.cursor = t0
                tstats.uops += 1
                # try_deq (queues.py), inlined
                if not entries:
                    queue.empty_blocks += 1
                    return deq_gen(handler, True)
                value, avail = entries.popleft()
                t = avail if avail > t0 else t0
                slot_free.append(t)
                queue.total_deqs += 1
                if qtracer is not None:
                    qtracer.counter(qlabel, t, len(entries))
                if queue.waiting_producers:
                    waiters = queue.waiting_producers
                    queue.waiting_producers = []
                    for waiter in waiters:
                        waiter.wake()
                # finish, inlined
                tstats.queue_ops += 1
                sstats.queue_deqs += 1
                comp = t + 1
                r = comp
                last = ctx.rob_last
                if r < last:
                    r = last
                ctx.rob_last = r
                if len(rob) >= rob_size:
                    oldest = rob.popleft()
                    cur = ctx.cursor
                    if oldest > cur:
                        tstats.mem_stall += oldest - cur
                        if tracer is not None:
                            tracer.stall(tname, "mem", cur, oldest)
                        ctx.cursor = oldest
                rob.append(r)
                if handler is not None and type(value) is Ctrl:
                    regs["%ctrl"] = value
                    ready["%ctrl"] = t
                    h_mode, h_fn = handler
                    if h_fn is None:
                        continue
                    if h_mode == GEN:
                        return run_gen_handler(h_fn, handler)
                    signal = h_fn()
                    if signal is None:
                        continue
                    if type(signal) is not tuple:
                        return after_handler(signal, handler)
                    return signal
                regs[dst] = value
                ready[dst] = t
                return None

        return (MAYBE, step)

    def _compile_peek(self, stmt):
        ctx = self.ctx
        regs, ready = ctx.regs, ctx.ready
        tstats = ctx.stats
        acquire, retire = self._acquire, self._retire
        tracer, tname = self._tracer, self._tname
        task = ctx.task
        dst = stmt.dst
        qid = stmt.queue
        queue = self.env.queue_of(self, qid)
        try_peek = queue.try_peek
        block_key = ("peek", qid)

        def blocked():
            wait_from = ctx.cursor
            res = None
            while res is None:
                task.block(block_key)
                queue.waiting_consumers.append(task)
                yield BLOCKED
                res = try_peek(ctx.cursor)
            value, t = res
            if t > ctx.cursor:
                stall = t - wait_from
                tstats.queue_stall += stall if stall > 0.0 else 0.0
                if tracer is not None and t > wait_from:
                    tracer.stall(tname, "queue", wait_from, t)
                ctx.cursor = t
            regs[dst] = value
            ready[dst] = t
            retire(t + 1)

        def step():
            t0 = acquire(ctx.cursor)
            ctx.cursor = t0
            tstats.uops += 1
            res = try_peek(t0)
            if res is None:
                return blocked()
            value, t = res
            regs[dst] = value
            ready[dst] = t
            retire(t + 1)
            return None

        return (MAYBE, step)

    def _compile_barrier(self, stmt):
        ctx = self.ctx
        tstats = ctx.stats
        env = self.env
        tracer, tname = self._tracer, self._tname
        task = ctx.task
        block_key = ("barrier", stmt.tag)

        def step_gen():
            barrier = env.barrier  # installed after stage setup
            release = barrier.arrive(task, ctx.cursor)
            if release is None:
                task.block(block_key)
                yield BLOCKED
                release = barrier.last_release
            if release > ctx.cursor:
                tstats.barrier_stall += release - ctx.cursor
                if tracer is not None:
                    tracer.stall(tname, "barrier", ctx.cursor, release)
                ctx.cursor = release

        return (GEN, step_gen)

    # -- top level ----------------------------------------------------------

    def run(self):
        """Top-level generator executed by the scheduler."""
        ctx = self.ctx
        ctx.stats.start_cycle = ctx.cursor
        mode, fn = self._body
        if fn is None:
            signal = None
        elif mode == GEN:
            signal = yield from fn()
        else:
            signal = fn()
            if signal is not None and mode == MAYBE and type(signal) is not tuple:
                signal = yield from signal
        if signal is not None and signal is not _HALT:
            raise SimulationError(
                "stage %s finished with dangling control signal %r"
                % (self.stage.name, signal)
            )
        ctx.stats.end_cycle = ctx.cursor
        self.env.on_thread_done(self)
