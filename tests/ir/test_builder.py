"""IRBuilder: block nesting, fresh names, and emitted structure."""

import pytest

from repro import ir


def test_fresh_names_unique():
    b = ir.IRBuilder()
    names = {b.fresh() for _ in range(100)}
    assert len(names) == 100


def test_fresh_hint():
    b = ir.IRBuilder()
    assert b.fresh("v").startswith("v")


def test_simple_sequence():
    b = ir.IRBuilder()
    x = b.binop("add", 1, 2)
    b.store("@out", 0, x)
    body = b.finish()
    assert [s.kind for s in body] == ["assign", "store"]


def test_for_nesting():
    b = ir.IRBuilder()
    with b.for_("i", 0, "n"):
        v = b.load("@a", "i")
        with b.if_(b.binop("gt", v, 0)):
            b.enq(0, v)
    body = b.finish()
    assert body[0].kind == "for"
    inner = body[0].body
    assert inner[0].kind == "load"
    assert inner[-1].kind == "if"
    assert inner[-1].then_body[0].kind == "enq"


def test_if_else_arms():
    b = ir.IRBuilder()
    with b.if_else("c") as (then, els):
        with then:
            b.mov(1, dst="x")
        with els:
            b.mov(2, dst="x")
    body = b.finish()
    assert body[0].kind == "if"
    assert body[0].then_body[0].args == [1]
    assert body[0].else_body[0].args == [2]


def test_loop_and_break():
    b = ir.IRBuilder()
    with b.loop():
        b.break_()
    body = b.finish()
    assert body[0].kind == "loop"
    assert body[0].body[0].kind == "break"


def test_enq_ctrl_string_coerced():
    b = ir.IRBuilder()
    b.enq_ctrl(1, "NEXT")
    (stmt,) = b.finish()
    assert stmt.ctrl == ir.Ctrl("NEXT")


def test_atomic_helpers():
    b = ir.IRBuilder()
    b.atomic_add("@a", "i", 1)
    b.atomic_min("@a", "i", "x")
    b.atomic_or("@a", "i", 4)
    kinds = [(s.kind, s.op) for s in b.finish()]
    assert kinds == [("atomic_rmw", "add"), ("atomic_rmw", "min"), ("atomic_rmw", "or")]


def test_dist_helpers():
    b = ir.IRBuilder()
    b.enq_dist(2, "v", "r")
    b.enq_ctrl_dist(2, "DONE")
    body = b.finish()
    assert body[0].kind == "enq_dist"
    assert body[1].kind == "enq_ctrl_dist"
    assert body[1].ctrl == ir.Ctrl("DONE")


def test_unclosed_block_rejected():
    b = ir.IRBuilder()
    cm = b.for_("i", 0, 3)
    cm.__enter__()
    with pytest.raises(RuntimeError):
        b.finish()


def test_block_collects_detached():
    b = ir.IRBuilder()
    with b.block() as handler:
        b.break_()
    assert handler[0].kind == "break"
    assert b.finish() == []  # handler statements stay out of the main body


def test_shared_helpers():
    b = ir.IRBuilder()
    x = b.read_shared("total")
    b.write_shared("total", x)
    b.barrier("phase")
    kinds = [s.kind for s in b.finish()]
    assert kinds == ["read_shared", "write_shared", "barrier"]
