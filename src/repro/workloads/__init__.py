"""The paper's benchmarks, inputs, and baseline variants."""

from . import bc, bfs, cc, datasets, graphs, matrices, pr, prd, radii, spmm, spmv, sssp, tc
from .dataflow import dataflow_variant
from .graphs import (
    CSRGraph,
    WeightedCSRGraph,
    canonicalize,
    mesh3d,
    power_law,
    road_network,
    uniform_random,
    with_weights,
)
from .matrices import CSRMatrix, random_matrix

#: The five C benchmarks of Sec. VI-B, by name.
GRAPH_BENCHMARKS = {"bfs": bfs, "cc": cc, "prd": prd, "radii": radii}

#: The GARDENIA-style irregular-workload suite (ROADMAP: workload breadth).
GARDENIA_BENCHMARKS = {"sssp": sssp, "pr": pr, "tc": tc, "bc": bc, "spmv": spmv}

ALL_BENCHMARKS = dict(GRAPH_BENCHMARKS, spmm=spmm, **GARDENIA_BENCHMARKS)

__all__ = [
    "bc",
    "bfs",
    "cc",
    "datasets",
    "graphs",
    "matrices",
    "pr",
    "prd",
    "radii",
    "spmm",
    "spmv",
    "sssp",
    "tc",
    "dataflow_variant",
    "CSRGraph",
    "WeightedCSRGraph",
    "canonicalize",
    "mesh3d",
    "power_law",
    "road_network",
    "uniform_random",
    "with_weights",
    "CSRMatrix",
    "random_matrix",
    "GRAPH_BENCHMARKS",
    "GARDENIA_BENCHMARKS",
    "ALL_BENCHMARKS",
]
