"""IR verifier: each structural invariant accepts/rejects correctly."""

import pytest

from repro import ir
from repro.errors import IRVerificationError


def _func(body, arrays=None, params=("n",)):
    arrays = arrays or {"a": ir.ArrayDecl("a"), "out": ir.ArrayDecl("out")}
    return ir.Function("k", list(params), arrays, body)


class TestFunctionVerifier:
    def test_accepts_valid(self):
        body = [
            ir.Assign("x", "mov", [0]),
            ir.For("i", 0, "n", 1, [ir.Load("v", "@a", "i"), ir.Store("@out", "i", "v")]),
        ]
        assert ir.verify_function(_func(body))

    def test_rejects_undefined_use(self):
        body = [ir.Assign("x", "add", ["ghost", 1])]
        with pytest.raises(IRVerificationError, match="undefined register"):
            ir.verify_function(_func(body))

    def test_rejects_undeclared_array(self):
        body = [ir.Load("v", "@missing", 0)]
        with pytest.raises(IRVerificationError, match="undeclared array"):
            ir.verify_function(_func(body))

    def test_rejects_store_to_const(self):
        arrays = {"a": ir.ArrayDecl("a", readonly=True)}
        body = [ir.Store("@a", 0, 1)]
        with pytest.raises(IRVerificationError, match="const array"):
            ir.verify_function(_func(body, arrays))

    def test_rejects_deep_break(self):
        body = [ir.Loop([ir.Break(2)])]
        with pytest.raises(IRVerificationError, match="break 2"):
            ir.verify_function(_func(body))

    def test_rejects_continue_outside_loop(self):
        with pytest.raises(IRVerificationError, match="continue outside"):
            ir.verify_function(_func([ir.Continue()]))

    def test_loop_var_defined_inside(self):
        body = [ir.For("i", 0, "n", 1, [ir.Assign("x", "add", ["i", 1])])]
        assert ir.verify_function(_func(body))

    def test_rejects_queue_ops_in_serial_function(self):
        # Serial kernels have no queues; enq/deq only make sense after the
        # compiler decouples the kernel into a pipeline.
        for stmt in (ir.Enq(0, "n"), ir.Deq("x", 0), ir.Peek("x", 0)):
            with pytest.raises(IRVerificationError, match="outside a pipeline stage"):
                ir.verify_function(_func([stmt]))

    def test_error_carries_statement_span(self):
        from repro.diag import Span

        stmt = ir.Assign("x", "add", ["ghost", 1])
        stmt.span = Span(12, 3)
        with pytest.raises(IRVerificationError) as excinfo:
            ir.verify_function(_func([stmt]))
        assert excinfo.value.line == 12
        assert excinfo.value.col == 3
        assert "line 12:3" in str(excinfo.value)


def _pipeline(stages, queues, ras=(), arrays=None):
    arrays = arrays or {"a": ir.ArrayDecl("a")}
    return ir.PipelineProgram("p", stages, queues, list(ras), arrays, ["n"])


class TestPipelineVerifier:
    def test_accepts_simple_pair(self):
        s0 = ir.StageProgram(0, "p", [ir.Enq(0, "n")])
        s1 = ir.StageProgram(1, "c", [ir.Deq("x", 0)])
        p = _pipeline([s0, s1], [ir.QueueSpec(0, ("stage", 0), ("stage", 1))])
        assert ir.verify_pipeline(p)

    def test_rejects_wrong_producer(self):
        s0 = ir.StageProgram(0, "p", [ir.Enq(0, "n")])
        s1 = ir.StageProgram(1, "c", [ir.Enq(0, "n")])  # consumer enqueues
        p = _pipeline([s0, s1], [ir.QueueSpec(0, ("stage", 0), ("stage", 1))])
        with pytest.raises(IRVerificationError, match="not the producer"):
            ir.verify_pipeline(p)

    def test_rejects_wrong_consumer(self):
        s0 = ir.StageProgram(0, "p", [ir.Deq("x", 0)])
        s1 = ir.StageProgram(1, "c", [ir.Deq("y", 0)])
        p = _pipeline([s0, s1], [ir.QueueSpec(0, ("stage", 0), ("stage", 1))])
        with pytest.raises(IRVerificationError, match="not the consumer"):
            ir.verify_pipeline(p)

    def test_rejects_undeclared_queue(self):
        s0 = ir.StageProgram(0, "p", [ir.Enq(9, "n")])
        p = _pipeline([s0], [])
        with pytest.raises(IRVerificationError, match="undeclared queue"):
            ir.verify_pipeline(p)

    def test_rejects_undeclared_queue_in_deq_and_handler(self):
        s0 = ir.StageProgram(0, "p", [ir.Enq(0, "n")])
        s1 = ir.StageProgram(
            1, "c", [ir.Deq("x", 0)], handlers={0: [ir.Enq(5, "%ctrl")]}
        )
        p = _pipeline([s0, s1], [ir.QueueSpec(0, ("stage", 0), ("stage", 1))])
        with pytest.raises(IRVerificationError, match="undeclared queue 5"):
            ir.verify_pipeline(p)

    def test_rejects_duplicate_stage_indices(self):
        s0 = ir.StageProgram(0, "p", [ir.Enq(0, "n")])
        s0b = ir.StageProgram(0, "q", [])
        s1 = ir.StageProgram(1, "c", [ir.Deq("x", 0)])
        p = _pipeline([s0, s0b, s1], [ir.QueueSpec(0, ("stage", 0), ("stage", 1))])
        with pytest.raises(IRVerificationError, match="two stages with index 0"):
            ir.verify_pipeline(p)

    def test_rejects_duplicate_ra_ids(self):
        s0 = ir.StageProgram(0, "p", [ir.Enq(0, "n")])
        s1 = ir.StageProgram(1, "c", [ir.Deq("x", 3)])
        queues = [
            ir.QueueSpec(0, ("stage", 0), ("ra", 0)),
            ir.QueueSpec(1, ("ra", 0), ("stage", 1)),
            ir.QueueSpec(2, ("stage", 0), ("ra", 0)),
            ir.QueueSpec(3, ("ra", 0), ("stage", 1)),
        ]
        ras = [
            ir.RASpec(0, ir.RA_INDIRECT, "@a", 0, 1),
            ir.RASpec(0, ir.RA_INDIRECT, "@a", 2, 3),
        ]
        p = _pipeline([s0, s1], queues, ras)
        with pytest.raises(IRVerificationError, match="two RAs with id 0"):
            ir.verify_pipeline(p)

    def test_rejects_ra_with_same_in_and_out_queue(self):
        s0 = ir.StageProgram(0, "p", [ir.Enq(0, "n")])
        queues = [ir.QueueSpec(0, ("stage", 0), ("ra", 0))]
        ras = [ir.RASpec(0, ir.RA_INDIRECT, "@a", 0, 0)]
        p = _pipeline([s0], queues, ras)
        with pytest.raises(IRVerificationError, match="both input and output"):
            ir.verify_pipeline(p)

    def test_rejects_unknown_endpoint(self):
        s0 = ir.StageProgram(0, "p", [])
        p = _pipeline([s0], [ir.QueueSpec(0, ("stage", 0), ("stage", 7))])
        with pytest.raises(IRVerificationError, match="unknown consumer"):
            ir.verify_pipeline(p)

    def test_rejects_queue_limit(self):
        stages = [ir.StageProgram(0, "p", []), ir.StageProgram(1, "c", [])]
        queues = [ir.QueueSpec(q, ("stage", 0), ("stage", 1)) for q in range(17)]
        p = _pipeline(stages, queues)
        with pytest.raises(IRVerificationError, match="machine limit"):
            ir.verify_pipeline(p, max_queues=16)

    def test_rejects_ra_limit(self):
        stages = [ir.StageProgram(0, "p", []), ir.StageProgram(1, "c", [])]
        queues = []
        ras = []
        for i in range(5):
            queues.append(ir.QueueSpec(2 * i, ("stage", 0), ("ra", i)))
            queues.append(ir.QueueSpec(2 * i + 1, ("ra", i), ("stage", 1)))
            ras.append(ir.RASpec(i, ir.RA_INDIRECT, "@a", 2 * i, 2 * i + 1))
        p = _pipeline(stages, queues, ras)
        with pytest.raises(IRVerificationError, match="machine limit"):
            ir.verify_pipeline(p, max_ras=4)
        assert ir.verify_pipeline(p, max_ras=8)

    def test_ra_wiring_must_match_queues(self):
        s0 = ir.StageProgram(0, "p", [ir.Enq(0, "n")])
        s1 = ir.StageProgram(1, "c", [ir.Deq("x", 1)])
        queues = [
            ir.QueueSpec(0, ("stage", 0), ("ra", 0)),
            ir.QueueSpec(1, ("stage", 0), ("stage", 1)),  # RA not the producer
        ]
        ras = [ir.RASpec(0, ir.RA_INDIRECT, "@a", 0, 1)]
        p = _pipeline([s0, s1], queues, ras)
        with pytest.raises(IRVerificationError, match="not the producer of its output"):
            ir.verify_pipeline(p)

    def test_handler_must_be_on_consumed_queue(self):
        s0 = ir.StageProgram(0, "p", [ir.Enq(0, "n")], handlers={0: [ir.Break(1)]})
        s1 = ir.StageProgram(1, "c", [ir.Deq("x", 0)])
        p = _pipeline([s0, s1], [ir.QueueSpec(0, ("stage", 0), ("stage", 1))])
        with pytest.raises(IRVerificationError, match="handler"):
            ir.verify_pipeline(p)

    def test_handler_may_use_ctrl_register(self):
        s0 = ir.StageProgram(0, "p", [ir.Enq(0, "n")])
        s1 = ir.StageProgram(
            1,
            "c",
            [ir.Loop([ir.Deq("x", 0)])],
            handlers={0: [ir.Enq(1, "%ctrl"), ir.Break(1)]},
        )
        s2 = ir.StageProgram(2, "d", [ir.Deq("y", 1)])
        p = _pipeline(
            [s0, s1, s2],
            [
                ir.QueueSpec(0, ("stage", 0), ("stage", 1)),
                ir.QueueSpec(1, ("stage", 1), ("stage", 2)),
            ],
        )
        assert ir.verify_pipeline(p)

    def test_serial_pipeline_wrapper(self):
        f = ir.Function("k", ["n"], {"a": ir.ArrayDecl("a")}, [ir.Load("v", "@a", 0)])
        p = ir.serial_pipeline(f)
        assert p.num_stages == 1
        assert p.meta["serial"]
        assert ir.verify_pipeline(p)

    def test_num_units_counts_ras(self):
        s0 = ir.StageProgram(0, "p", [ir.Enq(0, "n")])
        s1 = ir.StageProgram(1, "c", [ir.Deq("x", 1)])
        queues = [
            ir.QueueSpec(0, ("stage", 0), ("ra", 0)),
            ir.QueueSpec(1, ("ra", 0), ("stage", 1)),
        ]
        ras = [ir.RASpec(0, ir.RA_INDIRECT, "@a", 0, 1)]
        p = _pipeline([s0, s1], queues, ras)
        assert p.num_units == 3
