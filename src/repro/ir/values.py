"""Operand conventions and control values for the Phloem IR.

Operands are kept lightweight on purpose — passes copy and rewrite them
constantly, so they are plain Python values rather than node objects:

* a scalar register or parameter is a ``str`` (e.g. ``"v"``, ``"t12"``);
* an array symbol is a ``str`` starting with ``"@"`` (e.g. ``"@edges"``);
* a constant is an ``int`` or ``float``.

A register may hold an *array handle* (the ``"@name"`` string of an array),
which is how the frontend models swappable ``restrict`` pointers such as
BFS's ``cur_fringe``/``next_fringe``.
"""


def is_reg(operand):
    """True if ``operand`` names a scalar register (not an array literal)."""
    return isinstance(operand, str) and not operand.startswith("@")


def is_array_symbol(operand):
    """True if ``operand`` is a literal array symbol like ``"@edges"``."""
    return isinstance(operand, str) and operand.startswith("@")


def is_const(operand):
    """True if ``operand`` is a numeric literal."""
    return isinstance(operand, (int, float)) and not isinstance(operand, bool)


def array_name(symbol):
    """Strip the ``@`` sigil from an array symbol."""
    if not is_array_symbol(symbol):
        raise ValueError("not an array symbol: %r" % (symbol,))
    return symbol[1:]


class Ctrl:
    """An in-band control value (Pipette Table I: ``enq_ctrl``/``is_control``).

    Control values travel through queues alongside data but can never be
    interpreted as data. They are identified by name; ``Ctrl("NEXT")`` is the
    end-of-edge-list marker from the paper's BFS example, and compilers are
    free to mint their own.
    """

    __slots__ = ("name",)

    #: Well-known control value names used by the compiler.
    NEXT = "NEXT"
    DONE = "DONE"

    def __init__(self, name):
        self.name = name

    def __eq__(self, other):
        return isinstance(other, Ctrl) and other.name == self.name

    def __hash__(self):
        return hash(("Ctrl", self.name))

    def __repr__(self):
        return "Ctrl(%s)" % self.name


def is_control(value):
    """Runtime test mirroring Pipette's ``is_control(v)`` primitive."""
    return isinstance(value, Ctrl)
