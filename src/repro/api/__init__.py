"""The compile-and-simulate request/response API.

One typed request per CLI verb, one ``handle()`` entry point, one
versioned JSON wire format — the shared substrate under both frontends:

* the one-shot CLI (:mod:`repro.cli`) builds a request from argv, calls
  :func:`handle`, and prints ``Response.output`` verbatim;
* the long-lived daemon (:mod:`repro.service`) decodes the same wire
  objects off a socket, executes them on a fork worker pool over the
  shared content-addressed caches, and streams ``Response.records`` back
  as JSONL.

See :mod:`repro.api.requests` for the schema/versioning policy and
:mod:`repro.api.handlers` for the per-verb semantics.
"""

from .handlers import DEMO_VARIANTS, handle
from .requests import (
    API_VERSION,
    REQUEST_SCHEMA,
    REQUEST_TYPES,
    RESPONSE_SCHEMA,
    RESPONSE_TYPES,
    ApiError,
    BenchPerfRequest,
    BenchPerfResponse,
    CompileRequest,
    CompileResponse,
    LintRequest,
    LintResponse,
    MetricsRequest,
    MetricsResponse,
    ReportRequest,
    ReportResponse,
    Request,
    Response,
    RunRequest,
    RunResponse,
    SearchRequest,
    SearchResponse,
    TraceRequest,
    TraceResponse,
    error_response,
)

__all__ = [
    "API_VERSION",
    "REQUEST_SCHEMA",
    "RESPONSE_SCHEMA",
    "REQUEST_TYPES",
    "RESPONSE_TYPES",
    "ApiError",
    "Request",
    "Response",
    "CompileRequest",
    "CompileResponse",
    "LintRequest",
    "LintResponse",
    "RunRequest",
    "RunResponse",
    "SearchRequest",
    "SearchResponse",
    "TraceRequest",
    "TraceResponse",
    "MetricsRequest",
    "MetricsResponse",
    "BenchPerfRequest",
    "BenchPerfResponse",
    "ReportRequest",
    "ReportResponse",
    "error_response",
    "handle",
    "DEMO_VARIANTS",
]
